#include "api/report.h"

#include "api/run_config.h"
#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"

namespace ksim::api {

void write_mem_geometry(support::JsonWriter& w, const std::string& key,
                        const cycle::MemGeometry& g) {
  w.begin_object(key);
  w.field("line_size", g.line_size);
  w.begin_object("l1");
  w.field("sets", g.l1.sets);
  w.field("ways", g.l1.ways);
  w.field("hit_latency", g.l1.hit_latency);
  w.end();
  w.begin_object("l2");
  w.field("sets", g.l2.sets);
  w.field("ways", g.l2.ways);
  w.field("hit_latency", g.l2.hit_latency);
  w.end();
  w.field("ports", g.ports);
  w.field("miss_latency", g.miss_latency);
  w.end();
}

namespace {

uint32_t geometry_u32(const support::JsonValue& v, const std::string& what) {
  if (!v.is_number() || v.number < 0 || v.number > 4294967295.0 ||
      v.number != static_cast<double>(static_cast<uint64_t>(v.number)))
    throw ConfigError(what + " expects a non-negative integer");
  return static_cast<uint32_t>(v.number);
}

cycle::LevelGeometry level_from_json(const support::JsonValue& v,
                                     cycle::LevelGeometry defaults,
                                     const std::string& what) {
  if (!v.is_object()) throw ConfigError(what + " expects an object");
  cycle::LevelGeometry g = defaults;
  for (const auto& [key, value] : v.entries) {
    if (key == "sets") g.sets = geometry_u32(value, what + ".sets");
    else if (key == "ways") g.ways = geometry_u32(value, what + ".ways");
    else if (key == "hit_latency")
      g.hit_latency = geometry_u32(value, what + ".hit_latency");
    else
      throw ConfigError(what + ": unknown key \"" + key + "\"");
  }
  return g;
}

} // namespace

cycle::MemGeometry mem_geometry_from_json(const support::JsonValue& v,
                                          const std::string& context) {
  const std::string what = context + ".memory";
  if (!v.is_object()) throw ConfigError(what + " expects an object");
  cycle::MemGeometry g;
  for (const auto& [key, value] : v.entries) {
    if (key == "line_size") g.line_size = geometry_u32(value, what + ".line_size");
    else if (key == "l1") g.l1 = level_from_json(value, g.l1, what + ".l1");
    else if (key == "l2") g.l2 = level_from_json(value, g.l2, what + ".l2");
    else if (key == "ports") g.ports = geometry_u32(value, what + ".ports");
    else if (key == "miss_latency")
      g.miss_latency = geometry_u32(value, what + ".miss_latency");
    else
      throw ConfigError(what + ": unknown key \"" + key + "\"");
  }
  return g;
}

bool apply_flat_mem_key(cycle::MemGeometry& g, const std::string& key,
                        const support::JsonValue& value,
                        const std::string& context) {
  struct FlatKey {
    const char* key;
    const char* replacement;
    uint32_t cycle::MemGeometry::* u32_field;
    cycle::LevelGeometry cycle::MemGeometry::* level;
    uint32_t cycle::LevelGeometry::* leaf;
  };
  static constexpr FlatKey kFlatKeys[] = {
      {"mem_line_size", "memory.line_size", &cycle::MemGeometry::line_size,
       nullptr, nullptr},
      {"mem_l1_sets", "memory.l1.sets", nullptr, &cycle::MemGeometry::l1,
       &cycle::LevelGeometry::sets},
      {"mem_l1_ways", "memory.l1.ways", nullptr, &cycle::MemGeometry::l1,
       &cycle::LevelGeometry::ways},
      {"mem_l1_latency", "memory.l1.hit_latency", nullptr,
       &cycle::MemGeometry::l1, &cycle::LevelGeometry::hit_latency},
      {"mem_l2_sets", "memory.l2.sets", nullptr, &cycle::MemGeometry::l2,
       &cycle::LevelGeometry::sets},
      {"mem_l2_ways", "memory.l2.ways", nullptr, &cycle::MemGeometry::l2,
       &cycle::LevelGeometry::ways},
      {"mem_l2_latency", "memory.l2.hit_latency", nullptr,
       &cycle::MemGeometry::l2, &cycle::LevelGeometry::hit_latency},
      {"mem_ports", "memory.ports", &cycle::MemGeometry::ports, nullptr,
       nullptr},
      {"mem_miss_latency", "memory.miss_latency",
       &cycle::MemGeometry::miss_latency, nullptr, nullptr},
  };
  for (const FlatKey& flat : kFlatKeys) {
    if (key != flat.key) continue;
    warn_deprecated("flat memory key \"" + std::string(flat.key) + "\"",
                    std::string("\"") + flat.replacement + "\"");
    const uint32_t parsed =
        geometry_u32(value, context + ": \"" + key + "\"");
    if (flat.u32_field != nullptr)
      g.*(flat.u32_field) = parsed;
    else
      g.*(flat.level).*(flat.leaf) = parsed;
    return true;
  }
  return false;
}

std::string render_report_json(const Report& r) {
  support::JsonWriter w;
  w.begin_object();
  w.field("schema", "ksim.run");
  w.field("schema_version", kSchemaVersion);
  w.field("target", r.target);
  w.field("model", r.model);
  w.field("stop_reason", r.stop_reason);
  w.field("exit_code", r.exit_code);
  w.field("instructions", r.stats.instructions);
  w.field("operations", r.stats.operations);
  w.field("decodes", r.stats.decodes);
  w.field("cache_lookups", r.stats.cache_lookups);
  w.field("pred_hits", r.stats.pred_hits);
  w.field("isa_switches", r.stats.isa_switches);
  w.field("libc_calls", r.stats.libc_calls);
  w.field("blocks_formed", r.stats.blocks_formed);
  w.field("block_dispatches", r.stats.block_dispatches);
  w.field("block_chain_hits", r.stats.block_chain_hits);
  w.field("jit_blocks_translated", r.stats.jit_blocks_translated);
  w.field("jit_dispatches", r.stats.jit_dispatches);
  w.field("jit_side_exits", r.stats.jit_side_exits);
  w.field("jit_bailouts", r.stats.jit_bailouts);
  w.field("jit_cache_flushes", r.stats.jit_cache_flushes);
  w.field("output_bytes", r.output_bytes);
  if (r.has_cycles) {
    w.field("cycles", r.cycles);
    w.field("ops_per_cycle", r.ops_per_cycle);
  }
  if (r.has_memory) write_mem_geometry(w, "memory", r.memory);
  if (r.has_predictor) {
    w.begin_object("branch_predictor");
    w.field("kind", r.bp_kind);
    w.field("branches", r.bp_branches);
    w.field("mispredictions", r.bp_mispredictions);
    w.field("penalty", r.bp_penalty);
    w.end();
  }
  w.end();
  return w.str();
}

std::string render_report_text(const Report& r) {
  std::string out;
  out += strf("[ksim] %s after %llu instructions (%llu operations)\n",
              r.stop_reason.c_str(),
              static_cast<unsigned long long>(r.stats.instructions),
              static_cast<unsigned long long>(r.stats.operations));
  if (r.superblocks)
    out += strf("[ksim] superblocks: %llu formed, %llu dispatches"
                " (%.1f%% chained), %.2f%% lookups avoided\n",
                static_cast<unsigned long long>(r.stats.blocks_formed),
                static_cast<unsigned long long>(r.stats.block_dispatches),
                100.0 * r.stats.block_chain_avoidance(),
                100.0 * r.stats.lookup_avoidance());
  if (r.jit)
    out += strf("[ksim] jit: %llu blocks translated, %llu dispatches"
                " (%llu side exits, %llu bailouts, %llu cache flushes)\n",
                static_cast<unsigned long long>(r.stats.jit_blocks_translated),
                static_cast<unsigned long long>(r.stats.jit_dispatches),
                static_cast<unsigned long long>(r.stats.jit_side_exits),
                static_cast<unsigned long long>(r.stats.jit_bailouts),
                static_cast<unsigned long long>(r.stats.jit_cache_flushes));
  if (r.rtl_reference)
    out += strf("[ksim] RTL reference: %llu cycles\n",
                static_cast<unsigned long long>(r.cycles));
  else if (r.has_cycles)
    out += strf("[ksim] %s cycles: %llu (%.3f ops/cycle)\n",
                r.model_display.c_str(),
                static_cast<unsigned long long>(r.cycles), r.ops_per_cycle);
  if (r.has_predictor)
    out += strf("[ksim] branch predictor %s: %llu branches, %llu mispredicts"
                " (%.2f%%), penalty %d\n",
                r.bp_kind.c_str(),
                static_cast<unsigned long long>(r.bp_branches),
                static_cast<unsigned long long>(r.bp_mispredictions),
                r.bp_branches == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(r.bp_mispredictions) /
                          static_cast<double>(r.bp_branches),
                r.bp_penalty);
  return out;
}

} // namespace ksim::api
