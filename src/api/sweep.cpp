#include "api/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "analysis/lint.h"
#include "api/session.h"
#include "isa/kisa.h"
#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"
#include "workloads/build.h"

namespace ksim::api {

namespace {

bool sweepable_model(const std::string& model) {
  return model == "none" || model == "ilp" || model == "aie" || model == "doe";
}

} // namespace

void SweepSpec::validate() const {
  check(!workloads.empty(), "sweep: no workloads given");
  check(!isas.empty(), "sweep: no ISA configurations given");
  check(!models.empty(), "sweep: no cycle models given");
  check(threads >= 1, "sweep: --threads expects a positive count");
  for (const std::string& w : workloads)
    (void)workloads::by_name(w); // throws with the unknown name
  for (const std::string& i : isas)
    check(isa::kisa().find_isa(i) != nullptr, "sweep: unknown ISA " + i);
  for (const std::string& m : models)
    check(sweepable_model(m),
          "sweep: unknown or unsupported cycle model " + m +
              " (rtl records full traces and is excluded from sweeps)");
  check(base.ckpt_every == 0 && base.ckpt_dir.empty(),
        "sweep: checkpointing is per-run; use ksim run --checkpoint-every");
  check(base.trace_file.empty(), "sweep: --trace is per-run; use ksim run");
}

SweepSpec SweepSpec::from_manifest(const std::string& json_text,
                                   const std::string& origin) {
  const support::JsonValue doc = support::parse_json(json_text, origin);
  check(doc.is_object(), origin + ": manifest must be a JSON object");
  SweepSpec spec;
  const auto strings = [&](const char* key) {
    std::vector<std::string> out;
    const support::JsonValue& v = doc.at(key);
    check(v.is_array(), origin + ": \"" + key + "\" must be an array");
    for (const support::JsonValue& e : v.array)
      out.push_back(e.as_string(std::string(key) + " entry"));
    return out;
  };
  spec.workloads = strings("workloads");
  spec.isas = strings("isas");
  spec.models = strings("models");
  if (const support::JsonValue* v = doc.find("threads"); v != nullptr)
    spec.threads = static_cast<int>(v->as_int("threads"));
  if (const support::JsonValue* v = doc.find("seed"); v != nullptr)
    spec.base.seed = static_cast<uint32_t>(v->as_int("seed"));
  if (const support::JsonValue* v = doc.find("max_instructions"); v != nullptr)
    spec.base.max_instructions = static_cast<uint64_t>(v->as_int("max_instructions"));
  if (const support::JsonValue* v = doc.find("require_lint_clean"); v != nullptr)
    spec.require_lint_clean = v->as_bool("require_lint_clean");
  return spec;
}

std::vector<SweepPoint> expand_points(const SweepSpec& spec) {
  std::vector<SweepPoint> points;
  points.reserve(spec.workloads.size() * spec.isas.size() * spec.models.size());
  for (const std::string& w : spec.workloads)
    for (const std::string& i : spec.isas)
      for (const std::string& m : spec.models) {
        SweepPoint p;
        p.workload = w;
        p.isa = i;
        p.model = m;
        points.push_back(std::move(p));
      }
  return points;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepProgress& progress) {
  spec.validate();
  // Touch every lazily initialized immutable singleton (ISA set, workload
  // table) before any worker starts, so the parallel phase is read-only.
  (void)isa::kisa();
  (void)workloads::all();

  const auto t0 = std::chrono::steady_clock::now();

  SweepResult result;
  result.points = expand_points(spec);
  const size_t total = result.points.size();

  // Phase 1 (serial): build one immutable image per (workload, ISA) pair.
  // The compiler/assembler/linker are not exercised concurrently; every
  // session of the parallel phase only reads these.
  std::vector<ProgramImage> images;
  images.reserve(spec.workloads.size() * spec.isas.size());
  for (const std::string& w : spec.workloads)
    for (const std::string& i : spec.isas) {
      RunConfig cfg = spec.base;
      cfg.workload = w;
      cfg.isa = i;
      images.push_back(resolve_input(cfg));
    }
  const auto image_of = [&](size_t point_index) -> const ProgramImage& {
    // Points are model-minor: consecutive runs of models.size() points share
    // one image.
    return images[point_index / spec.models.size()];
  };

  // Optional lint gate, still serial: unclean images disqualify their points
  // up front (one lint per image, not per point).  The diagnostic carries the
  // finding tally so sweep JSON/table consumers can see why the point is out.
  std::vector<std::string> lint_errors(images.size());
  if (spec.require_lint_clean) {
    for (size_t i = 0; i < images.size(); ++i) {
      const analysis::LintResult lint =
          analysis::run_lint(images[i].exe, isa::kisa(), {});
      if (!lint.clean())
        lint_errors[i] = strf("lint: %s is not lint-clean (%d error%s, "
                              "%d warning%s); point gated by require_lint_clean",
                              images[i].label.c_str(), lint.errors,
                              lint.errors == 1 ? "" : "s", lint.warnings,
                              lint.warnings == 1 ? "" : "s");
    }
  }

  // Phase 2 (parallel): independent sessions over shared immutable images.
  // The queue is a single atomic cursor: each idle worker claims ("steals")
  // the next pending point, so imbalance between cheap and expensive points
  // only ever idles workers at the very end of the sweep.
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex progress_mutex;
  const auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      SweepPoint& p = result.points[i];
      const auto p0 = std::chrono::steady_clock::now();
      if (const std::string& gate = lint_errors[i / spec.models.size()];
          !gate.empty()) {
        p.error = gate;
        const size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          progress(p, finished, total);
        }
        continue;
      }
      try {
        RunConfig cfg = spec.base;
        cfg.workload = p.workload;
        cfg.isa = p.isa;
        cfg.model = p.model;
        cfg.echo_output = false; // simulated stdout stays in the session
        cfg.profile = false;
        Session session(cfg, image_of(i));
        const sim::StopReason reason = session.run();
        p.report = session.report(reason);
        if (reason == sim::StopReason::Trap ||
            reason == sim::StopReason::DecodeError) {
          p.error = std::string(sim::to_string(reason)) + ":\n" +
                    session.error_report();
        } else {
          p.ok = true;
        }
      } catch (const Error& e) {
        p.error = e.what();
      }
      p.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - p0)
              .count();
      const size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress(p, finished, total);
      }
    }
  };

  const int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(spec.threads), total));
  result.threads = workers < 1 ? 1 : workers;
  if (result.threads == 1) {
    worker(); // run on the calling thread; no pool, no locks
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(result.threads));
    for (int t = 0; t < result.threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const SweepPoint& p : result.points)
    if (!p.ok) ++result.failed;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

std::string render_sweep_json(const SweepSpec& spec, const SweepResult& result) {
  support::JsonWriter w;
  w.begin_object();
  w.field("schema", "ksim.sweep");
  w.field("schema_version", kSchemaVersion);
  w.field("threads", result.threads);
  w.field("points_total", static_cast<uint64_t>(result.points.size()));
  w.field("points_failed", static_cast<uint64_t>(result.failed));
  w.field("wall_seconds", result.wall_seconds);
  w.field("points_per_second", result.points_per_second());
  w.begin_array("workloads");
  for (const std::string& s : spec.workloads) w.element(s);
  w.end();
  w.begin_array("isas");
  for (const std::string& s : spec.isas) w.element(s);
  w.end();
  w.begin_array("models");
  for (const std::string& s : spec.models) w.element(s);
  w.end();
  w.begin_array("points");
  for (const SweepPoint& p : result.points) {
    w.begin_object();
    w.field("workload", p.workload);
    w.field("isa", p.isa);
    w.field("model", p.model);
    w.field("ok", p.ok);
    if (p.ok) {
      w.field("stop_reason", p.report.stop_reason);
      w.field("exit_code", p.report.exit_code);
      w.field("instructions", p.report.stats.instructions);
      w.field("operations", p.report.stats.operations);
      if (p.report.has_cycles) {
        w.field("cycles", p.report.cycles);
        w.field("ops_per_cycle", p.report.ops_per_cycle);
      }
      w.field("output_bytes", p.report.output_bytes);
    } else {
      w.field("error", p.error);
    }
    w.field("wall_seconds", p.wall_seconds);
    w.end();
  }
  w.end();
  w.end();
  return w.str();
}

std::string render_sweep_table(const SweepSpec& spec, const SweepResult& result) {
  // Index points back into the grid: spec order is workload-major,
  // model-minor.
  const size_t n_isas = spec.isas.size();
  const size_t n_models = spec.models.size();
  const auto point_at = [&](size_t w, size_t i, size_t m) -> const SweepPoint& {
    return result.points[(w * n_isas + i) * n_models + m];
  };
  std::string out;
  for (size_t m = 0; m < n_models; ++m) {
    const bool cycles_only = spec.models[m] == "none";
    out += strf("%s (%s)\n", spec.models[m].c_str(),
                cycles_only ? "instructions" : "ops/cycle");
    out += strf("%-10s", "workload");
    for (const std::string& isa_name : spec.isas)
      out += strf(" %10s", isa_name.c_str());
    out += "\n";
    for (size_t wl = 0; wl < spec.workloads.size(); ++wl) {
      out += strf("%-10s", spec.workloads[wl].c_str());
      for (size_t i = 0; i < n_isas; ++i) {
        const SweepPoint& p = point_at(wl, i, m);
        if (!p.ok)
          out += strf(" %10s", "FAIL");
        else if (cycles_only)
          out += strf(" %10llu",
                      static_cast<unsigned long long>(p.report.stats.instructions));
        else
          out += strf(" %10.3f", p.report.ops_per_cycle);
      }
      out += "\n";
    }
    if (m + 1 < n_models) out += "\n";
  }
  return out;
}

} // namespace ksim::api
