#include "api/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "analysis/lint.h"
#include "api/session.h"
#include "isa/kisa.h"
#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"
#include "workloads/build.h"

namespace ksim::api {

namespace {

/// Hard ceiling on the expanded memory axis: a ranged generator that
/// cross-products into more geometries than this is almost certainly a
/// manifest mistake, and every geometry is simulated per grid cell.
constexpr size_t kMaxGeometries = 4096;

bool sweepable_model(const std::string& model) {
  return model == "none" || model == "ilp" || model == "aie" || model == "doe";
}

/// One leaf of a geometry spec: a number, an explicit array, or a
/// {"min","max"} power-of-two-doubling range.
std::vector<uint32_t> leaf_values(const support::JsonValue& v,
                                  const std::string& what) {
  const auto one = [&](const support::JsonValue& n) -> uint32_t {
    if (!n.is_number() || n.number < 0 || n.number > 4294967295.0 ||
        n.number != static_cast<double>(static_cast<uint64_t>(n.number)))
      throw ConfigError(what + " expects a non-negative integer");
    return static_cast<uint32_t>(n.number);
  };
  if (v.is_number()) return {one(v)};
  if (v.is_array()) {
    if (v.array.empty()) throw ConfigError(what + ": empty value list");
    std::vector<uint32_t> out;
    out.reserve(v.array.size());
    for (const support::JsonValue& e : v.array) out.push_back(one(e));
    return out;
  }
  if (v.is_object()) {
    for (const auto& [key, _] : v.entries)
      if (key != "min" && key != "max")
        throw ConfigError(what + ": range takes only \"min\" and \"max\" (got \"" +
                          key + "\")");
    const support::JsonValue* min = v.find("min");
    const support::JsonValue* max = v.find("max");
    if (min == nullptr || max == nullptr)
      throw ConfigError(what + ": range needs both \"min\" and \"max\"");
    const uint32_t lo = one(*min);
    const uint32_t hi = one(*max);
    if (lo < 1 || hi < lo)
      throw ConfigError(what + ": range expects 1 <= min <= max");
    std::vector<uint32_t> out;
    for (uint64_t x = lo; x <= hi; x *= 2) // doubling generator
      out.push_back(static_cast<uint32_t>(x));
    return out;
  }
  throw ConfigError(what + " expects a number, an array, or a min/max range");
}

/// Per-leaf value lists of one geometry spec entry, defaults filled in.
struct GeometryLists {
  std::vector<uint32_t> line_size, l1_sets, l1_ways, l1_lat;
  std::vector<uint32_t> l2_sets, l2_ways, l2_lat, ports, miss;
};

GeometryLists parse_geometry_entry(const support::JsonValue& entry,
                                   const std::string& what) {
  if (!entry.is_object()) throw ConfigError(what + " expects an object");
  const cycle::MemGeometry d; // defaults for absent leaves
  GeometryLists g{{d.line_size}, {d.l1.sets},        {d.l1.ways},
                  {d.l1.hit_latency}, {d.l2.sets},   {d.l2.ways},
                  {d.l2.hit_latency}, {d.ports},     {d.miss_latency}};
  const auto level = [&](const support::JsonValue& v, const std::string& name,
                         std::vector<uint32_t>& sets, std::vector<uint32_t>& ways,
                         std::vector<uint32_t>& lat) {
    if (!v.is_object()) throw ConfigError(name + " expects an object");
    for (const auto& [key, value] : v.entries) {
      if (key == "sets") sets = leaf_values(value, name + ".sets");
      else if (key == "ways") ways = leaf_values(value, name + ".ways");
      else if (key == "hit_latency")
        lat = leaf_values(value, name + ".hit_latency");
      else
        throw ConfigError(name + ": unknown key \"" + key + "\"");
    }
  };
  for (const auto& [key, value] : entry.entries) {
    if (key == "line_size") g.line_size = leaf_values(value, what + ".line_size");
    else if (key == "l1") level(value, what + ".l1", g.l1_sets, g.l1_ways, g.l1_lat);
    else if (key == "l2") level(value, what + ".l2", g.l2_sets, g.l2_ways, g.l2_lat);
    else if (key == "ports") g.ports = leaf_values(value, what + ".ports");
    else if (key == "miss_latency")
      g.miss = leaf_values(value, what + ".miss_latency");
    else
      throw ConfigError(what + ": unknown key \"" + key + "\"");
  }
  return g;
}

/// Writes the geometry fields into the currently open object, in the
/// canonical order shared with write_mem_geometry().
void geometry_fields(support::JsonWriter& w, const cycle::MemGeometry& g) {
  w.field("line_size", g.line_size);
  w.begin_object("l1");
  w.field("sets", g.l1.sets);
  w.field("ways", g.l1.ways);
  w.field("hit_latency", g.l1.hit_latency);
  w.end();
  w.begin_object("l2");
  w.field("sets", g.l2.sets);
  w.field("ways", g.l2.ways);
  w.field("hit_latency", g.l2.hit_latency);
  w.end();
  w.field("ports", g.ports);
  w.field("miss_latency", g.miss_latency);
}

/// The journal record for a finished point (see sweep_journal.h).
SweepOutcome outcome_of(const SweepPoint& p, size_t index) {
  SweepOutcome o;
  o.point_index = index;
  o.ok = p.ok;
  o.error = p.error;
  o.stop_reason = p.report.stop_reason;
  o.exit_code = p.report.exit_code;
  o.instructions = p.report.stats.instructions;
  o.operations = p.report.stats.operations;
  o.has_cycles = p.report.has_cycles;
  o.cycles = p.report.cycles;
  o.ops_per_cycle = p.report.ops_per_cycle;
  o.output_bytes = p.report.output_bytes;
  return o;
}

void apply_outcome(const SweepOutcome& o, SweepPoint& p) {
  p.ok = o.ok;
  p.error = o.error;
  p.report.stop_reason = o.stop_reason;
  p.report.exit_code = o.exit_code;
  p.report.stats.instructions = o.instructions;
  p.report.stats.operations = o.operations;
  p.report.has_cycles = o.has_cycles;
  p.report.cycles = o.cycles;
  p.report.ops_per_cycle = o.ops_per_cycle;
  p.report.output_bytes = o.output_bytes;
}

} // namespace

std::vector<cycle::MemGeometry> parse_geometry_axis(
    const support::JsonValue& memories, const std::string& origin) {
  if (!memories.is_array())
    throw ConfigError(origin + ": \"memories\" must be an array");
  if (memories.array.empty())
    throw ConfigError(origin + ": \"memories\" must not be empty");
  std::vector<cycle::MemGeometry> out;
  std::set<std::string> seen;
  for (size_t e = 0; e < memories.array.size(); ++e) {
    const std::string what = strf("%s: memories[%zu]", origin.c_str(), e);
    const GeometryLists lists = parse_geometry_entry(memories.array[e], what);
    // Cross product in fixed leaf order, so the expansion order — and with
    // it every point index — is deterministic.
    for (uint32_t line : lists.line_size)
      for (uint32_t s1 : lists.l1_sets)
        for (uint32_t w1 : lists.l1_ways)
          for (uint32_t h1 : lists.l1_lat)
            for (uint32_t s2 : lists.l2_sets)
              for (uint32_t w2 : lists.l2_ways)
                for (uint32_t h2 : lists.l2_lat)
                  for (uint32_t p : lists.ports)
                    for (uint32_t m : lists.miss) {
                      cycle::MemGeometry g;
                      g.line_size = line;
                      g.l1 = {s1, w1, h1};
                      g.l2 = {s2, w2, h2};
                      g.ports = p;
                      g.miss_latency = m;
                      g.validate();
                      if (!seen.insert(g.id()).second)
                        throw ConfigError(what + ": duplicate geometry " + g.id());
                      if (out.size() >= kMaxGeometries)
                        throw ConfigError(
                            strf("%s: memory axis exceeds %zu geometries",
                                 origin.c_str(), kMaxGeometries));
                      out.push_back(g);
                    }
  }
  return out;
}

void SweepSpec::validate() const {
  check(!workloads.empty(), "sweep: no workloads given");
  check(!isas.empty(), "sweep: no ISA configurations given");
  check(!models.empty(), "sweep: no cycle models given");
  check(!geometries.empty(), "sweep: no memory geometries given");
  check(geometries.size() <= kMaxGeometries,
        strf("sweep: memory axis exceeds %zu geometries", kMaxGeometries));
  check(threads >= 1, "sweep: --threads expects a positive count");
  for (const std::string& w : workloads)
    (void)workloads::by_name(w); // throws with the unknown name
  for (const std::string& i : isas)
    check(isa::kisa().find_isa(i) != nullptr, "sweep: unknown ISA " + i);
  for (const std::string& m : models)
    check(sweepable_model(m),
          "sweep: unknown or unsupported cycle model " + m +
              " (rtl records full traces and is excluded from sweeps)");
  std::set<std::string> ids;
  for (const cycle::MemGeometry& g : geometries) {
    g.validate(); // throws ConfigError (exit 2)
    check(ids.insert(g.id()).second, "sweep: duplicate memory geometry " + g.id());
  }
  check(base.ckpt_every == 0 && base.ckpt_dir.empty(),
        "sweep: checkpointing is per-run; use ksim run --checkpoint-every");
  check(base.trace_file.empty(), "sweep: --trace is per-run; use ksim run");
}

SweepSpec SweepSpec::from_manifest(const std::string& json_text,
                                   const std::string& origin) {
  const support::JsonValue doc = support::parse_json(json_text, origin);
  check(doc.is_object(), origin + ": manifest must be a JSON object");
  SweepSpec spec;
  spec.geometries.clear();

  const auto strings = [&](const support::JsonValue& v, const char* key) {
    std::vector<std::string> out;
    check(v.is_array(), origin + ": \"" + key + "\" must be an array");
    for (const support::JsonValue& e : v.array)
      out.push_back(e.as_string(std::string(key) + " entry"));
    return out;
  };

  cycle::MemGeometry base_geometry;
  bool has_memories = false;
  bool has_base_geometry = false;
  bool has_workloads = false, has_isas = false, has_models = false;

  for (const auto& [key, value] : doc.entries) {
    if (key == "workloads") {
      spec.workloads = strings(value, "workloads");
      has_workloads = true;
    } else if (key == "isas") {
      spec.isas = strings(value, "isas");
      has_isas = true;
    } else if (key == "models") {
      spec.models = strings(value, "models");
      has_models = true;
    } else if (key == "memories") {
      spec.geometries = parse_geometry_axis(value, origin);
      has_memories = true;
    } else if (key == "memory") {
      base_geometry = mem_geometry_from_json(value, origin);
      has_base_geometry = true;
    } else if (key == "threads") {
      spec.threads = static_cast<int>(value.as_int("threads"));
    } else if (key == "seed") {
      spec.base.seed = static_cast<uint32_t>(value.as_int("seed"));
    } else if (key == "max_instructions") {
      spec.base.max_instructions =
          static_cast<uint64_t>(value.as_int("max_instructions"));
    } else if (key == "require_lint_clean") {
      spec.require_lint_clean = value.as_bool("require_lint_clean");
    } else if (key == "bp") {
      spec.base.bp_kind = value.as_string("bp");
    } else if (key == "bp_penalty") {
      spec.base.bp_penalty = static_cast<int>(value.as_int("bp_penalty"));
    } else if (key == "decode_cache") {
      spec.base.use_decode_cache = value.as_bool("decode_cache");
    } else if (key == "prediction") {
      spec.base.use_prediction = value.as_bool("prediction");
    } else if (key == "superblocks") {
      spec.base.use_superblocks = value.as_bool("superblocks");
    } else if (key == "jit") {
      spec.base.use_jit = value.as_bool("jit");
    } else if (key == "opstats") {
      spec.base.collect_op_stats = value.as_bool("opstats");
    } else if (apply_flat_mem_key(base_geometry, key, value, origin)) {
      has_base_geometry = true;
    } else {
      throw Error(origin + ": unknown manifest key \"" + key + "\"");
    }
  }
  check(has_workloads, origin + ": missing \"workloads\"");
  check(has_isas, origin + ": missing \"isas\"");
  check(has_models, origin + ": missing \"models\"");
  check(!(has_memories && has_base_geometry),
        origin + ": \"memories\" is mutually exclusive with \"memory\" and "
                 "the flat mem_* keys");
  if (!has_memories) {
    spec.base.memory = base_geometry;
    spec.geometries = {base_geometry};
  }
  return spec;
}

std::string render_sweep_manifest(const SweepSpec& spec) {
  support::JsonWriter w;
  w.begin_object();
  w.begin_array("workloads");
  for (const std::string& s : spec.workloads) w.element(s);
  w.end();
  w.begin_array("isas");
  for (const std::string& s : spec.isas) w.element(s);
  w.end();
  w.begin_array("models");
  for (const std::string& s : spec.models) w.element(s);
  w.end();
  w.begin_array("memories");
  for (const cycle::MemGeometry& g : spec.geometries) {
    w.begin_object();
    geometry_fields(w, g);
    w.end();
  }
  w.end();
  w.field("threads", spec.threads);
  w.field("seed", spec.base.seed);
  w.field("max_instructions", spec.base.max_instructions);
  w.field("require_lint_clean", spec.require_lint_clean);
  w.field("bp", spec.base.bp_kind);
  w.field("bp_penalty", spec.base.bp_penalty);
  w.field("decode_cache", spec.base.use_decode_cache);
  w.field("prediction", spec.base.use_prediction);
  w.field("superblocks", spec.base.use_superblocks);
  w.field("jit", spec.base.use_jit);
  w.field("opstats", spec.base.collect_op_stats);
  w.end();
  return w.str();
}

std::vector<SweepPoint> expand_points(const SweepSpec& spec) {
  std::vector<SweepPoint> points;
  points.reserve(spec.workloads.size() * spec.isas.size() *
                 spec.models.size() * spec.geometries.size());
  for (const std::string& w : spec.workloads)
    for (const std::string& i : spec.isas)
      for (const std::string& m : spec.models)
        for (size_t g = 0; g < spec.geometries.size(); ++g) {
          SweepPoint p;
          p.workload = w;
          p.isa = i;
          p.model = m;
          p.memory = spec.geometries[g];
          p.memory_index = g;
          points.push_back(std::move(p));
        }
  return points;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepProgress& progress,
                      SweepJournal* journal) {
  spec.validate();
  // Touch every lazily initialized immutable singleton (ISA set, workload
  // table) before any worker starts, so the parallel phase is read-only.
  (void)isa::kisa();
  (void)workloads::all();

  const auto t0 = std::chrono::steady_clock::now();

  SweepResult result;
  result.points = expand_points(spec);
  const size_t total = result.points.size();
  const size_t points_per_image = spec.models.size() * spec.geometries.size();

  // Journal pre-fill: points recorded by an earlier (killed) run of the same
  // manifest are completed up front and skipped by the workers.
  std::vector<char> prefilled(total, 0);
  if (journal != nullptr) {
    for (const SweepOutcome& o : journal->completed()) {
      check(o.point_index < total,
            "sweep journal: point index out of range (journal from a "
            "different manifest?)");
      if (prefilled[o.point_index] != 0) continue; // duplicate append
      apply_outcome(o, result.points[o.point_index]);
      prefilled[o.point_index] = 1;
      ++result.resumed;
    }
  }

  if (result.resumed < total) {
    // Phase 1 (serial): build one immutable image per (workload, ISA) pair.
    // The compiler/assembler/linker are not exercised concurrently; every
    // session of the parallel phase only reads these.
    std::vector<ProgramImage> images;
    images.reserve(spec.workloads.size() * spec.isas.size());
    for (const std::string& w : spec.workloads)
      for (const std::string& i : spec.isas) {
        RunConfig cfg = spec.base;
        cfg.workload = w;
        cfg.isa = i;
        images.push_back(resolve_input(cfg));
      }
    const auto image_of = [&](size_t point_index) -> const ProgramImage& {
      // Points are geometry-minor, model-next: consecutive runs of
      // models × geometries points share one image.
      return images[point_index / points_per_image];
    };

    // Optional lint gate, still serial: unclean images disqualify their
    // points up front (one lint per image, not per point).  The diagnostic
    // carries the finding tally so sweep JSON/table consumers can see why
    // the point is out.
    std::vector<std::string> lint_errors(images.size());
    if (spec.require_lint_clean) {
      for (size_t i = 0; i < images.size(); ++i) {
        const analysis::LintResult lint =
            analysis::run_lint(images[i].exe, isa::kisa(), {});
        if (!lint.clean())
          lint_errors[i] = strf("lint: %s is not lint-clean (%d error%s, "
                                "%d warning%s); point gated by require_lint_clean",
                                images[i].label.c_str(), lint.errors,
                                lint.errors == 1 ? "" : "s", lint.warnings,
                                lint.warnings == 1 ? "" : "s");
      }
    }

    // Phase 2 (parallel): independent sessions over shared immutable images.
    // The queue is a single atomic cursor: each idle worker claims ("steals")
    // the next pending point, so imbalance between cheap and expensive points
    // only ever idles workers at the very end of the sweep.
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{result.resumed};
    std::mutex progress_mutex;
    const auto worker = [&]() {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        if (prefilled[i] != 0) continue; // journal already has this point
        SweepPoint& p = result.points[i];
        const auto p0 = std::chrono::steady_clock::now();
        if (const std::string& gate = lint_errors[i / points_per_image];
            !gate.empty()) {
          p.error = gate;
        } else {
          try {
            RunConfig cfg = spec.base;
            cfg.workload = p.workload;
            cfg.isa = p.isa;
            cfg.model = p.model;
            cfg.memory = p.memory;
            cfg.echo_output = false; // simulated stdout stays in the session
            cfg.profile = false;
            Session session(cfg, image_of(i));
            const sim::StopReason reason = session.run();
            p.report = session.report(reason);
            if (reason == sim::StopReason::Trap ||
                reason == sim::StopReason::DecodeError) {
              p.error = std::string(sim::to_string(reason)) + ":\n" +
                        session.error_report();
            } else {
              p.ok = true;
            }
          } catch (const Error& e) {
            p.error = e.what();
          }
          p.wall_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            p0)
                  .count();
        }
        if (journal != nullptr) journal->append(outcome_of(p, i));
        const size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          progress(p, finished, total);
        }
      }
    };

    const int workers = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(spec.threads),
                         total - result.resumed));
    result.threads = workers < 1 ? 1 : workers;
    if (result.threads == 1) {
      worker(); // run on the calling thread; no pool, no locks
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(result.threads));
      for (int t = 0; t < result.threads; ++t) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }
  }

  for (const SweepPoint& p : result.points)
    if (!p.ok) ++result.failed;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

std::vector<size_t> pareto_front(
    const std::vector<std::pair<uint64_t, uint64_t>>& points) {
  std::vector<size_t> front;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j == i) continue;
      // j strictly dominates i: no worse on both axes, better on at least
      // one.  Exact ties dominate nobody, so tied optima all survive.
      dominated = points[j].first <= points[i].first &&
                  points[j].second <= points[i].second &&
                  (points[j].first < points[i].first ||
                   points[j].second < points[i].second);
    }
    if (!dominated) front.push_back(i);
  }
  std::sort(front.begin(), front.end(), [&](size_t a, size_t b) {
    if (points[a].second != points[b].second)
      return points[a].second < points[b].second; // area ascending
    if (points[a].first != points[b].first)
      return points[a].first < points[b].first;   // then cycles
    return a < b;
  });
  return front;
}

std::string render_sweep_json(const SweepSpec& spec, const SweepResult& result) {
  support::JsonWriter w;
  w.begin_object();
  w.field("schema", "ksim.sweep");
  w.field("schema_version", kSchemaVersion);
  w.field("points_total", static_cast<uint64_t>(result.points.size()));
  w.field("points_failed", static_cast<uint64_t>(result.failed));
  w.begin_array("workloads");
  for (const std::string& s : spec.workloads) w.element(s);
  w.end();
  w.begin_array("isas");
  for (const std::string& s : spec.isas) w.element(s);
  w.end();
  w.begin_array("models");
  for (const std::string& s : spec.models) w.element(s);
  w.end();
  w.begin_array("memories");
  for (const cycle::MemGeometry& g : spec.geometries) {
    w.begin_object();
    w.field("id", g.id());
    geometry_fields(w, g);
    w.field("area_proxy", g.area_proxy());
    w.end();
  }
  w.end();
  w.begin_array("points");
  for (const SweepPoint& p : result.points) {
    w.begin_object();
    w.field("workload", p.workload);
    w.field("isa", p.isa);
    w.field("model", p.model);
    w.field("memory", p.memory.id());
    w.field("ok", p.ok);
    if (p.ok) {
      w.field("stop_reason", p.report.stop_reason);
      w.field("exit_code", p.report.exit_code);
      w.field("instructions", p.report.stats.instructions);
      w.field("operations", p.report.stats.operations);
      if (p.report.has_cycles) {
        w.field("cycles", p.report.cycles);
        w.field("ops_per_cycle", p.report.ops_per_cycle);
        w.field("area_proxy", p.memory.area_proxy());
      }
      w.field("output_bytes", p.report.output_bytes);
    } else {
      w.field("error", p.error);
    }
    w.end();
  }
  w.end();
  // One Pareto front (cycles vs. area proxy, both minimized) per
  // (workload, ISA, model) group that produced at least one cycle-counted
  // point — the kdse design-space answer: which geometries are worth their
  // silicon for this application.
  w.begin_array("pareto");
  const size_t n_geoms = spec.geometries.size();
  for (size_t wl = 0; wl < spec.workloads.size(); ++wl)
    for (size_t is = 0; is < spec.isas.size(); ++is)
      for (size_t mo = 0; mo < spec.models.size(); ++mo) {
        const size_t base =
            ((wl * spec.isas.size() + is) * spec.models.size() + mo) * n_geoms;
        std::vector<std::pair<uint64_t, uint64_t>> pairs;
        std::vector<size_t> indices;
        for (size_t g = 0; g < n_geoms; ++g) {
          const SweepPoint& p = result.points[base + g];
          if (!p.ok || !p.report.has_cycles) continue;
          pairs.emplace_back(p.report.cycles, p.memory.area_proxy());
          indices.push_back(base + g);
        }
        if (pairs.empty()) continue;
        w.begin_object();
        w.field("workload", spec.workloads[wl]);
        w.field("isa", spec.isas[is]);
        w.field("model", spec.models[mo]);
        w.begin_array("points");
        for (size_t f : pareto_front(pairs)) {
          const SweepPoint& p = result.points[indices[f]];
          w.begin_object();
          w.field("memory", p.memory.id());
          w.field("cycles", p.report.cycles);
          w.field("area_proxy", p.memory.area_proxy());
          w.end();
        }
        w.end();
        w.end();
      }
  w.end();
  w.end();
  return w.str();
}

std::string render_sweep_table(const SweepSpec& spec, const SweepResult& result) {
  // Index points back into the grid: spec order is workload-major,
  // geometry-minor.  The matrix shows the first geometry of the axis (the
  // full geometry comparison lives in the JSON document's pareto section).
  const size_t n_isas = spec.isas.size();
  const size_t n_models = spec.models.size();
  const size_t n_geoms = spec.geometries.size();
  const auto point_at = [&](size_t w, size_t i, size_t m) -> const SweepPoint& {
    return result.points[((w * n_isas + i) * n_models + m) * n_geoms];
  };
  std::string out;
  for (size_t m = 0; m < n_models; ++m) {
    const bool cycles_only = spec.models[m] == "none";
    out += strf("%s (%s)\n", spec.models[m].c_str(),
                cycles_only ? "instructions" : "ops/cycle");
    out += strf("%-10s", "workload");
    for (const std::string& isa_name : spec.isas)
      out += strf(" %10s", isa_name.c_str());
    out += "\n";
    for (size_t wl = 0; wl < spec.workloads.size(); ++wl) {
      out += strf("%-10s", spec.workloads[wl].c_str());
      for (size_t i = 0; i < n_isas; ++i) {
        const SweepPoint& p = point_at(wl, i, m);
        if (!p.ok)
          out += strf(" %10s", "FAIL");
        else if (cycles_only)
          out += strf(" %10llu",
                      static_cast<unsigned long long>(p.report.stats.instructions));
        else
          out += strf(" %10.3f", p.report.ops_per_cycle);
      }
      out += "\n";
    }
    if (m + 1 < n_models) out += "\n";
  }
  return out;
}

} // namespace ksim::api
