// libksim — refcounted sharing of immutable ProgramImages (DESIGN.md §10).
//
// Long-running embedders (the ksimd service daemon, repeated-submission
// benches) resolve the same workload binary over and over; building it is by
// far the most expensive part of a short job.  ImageCache keys resolved
// images by what determines their bytes — the built-in workload name plus the
// target ISA — and hands out shared_ptr references to one immutable build, so
// any number of concurrent Sessions run against a single copy (the sharing
// contract Session already documents for sweeps).
//
// Only built-in-workload configurations are cached: file inputs name paths
// whose contents can change between submissions, so they are rebuilt on
// every request and never enter the cache.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "api/session.h"

namespace ksim::api {

class ImageCache {
public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;  ///< builds (cacheable or not)
    size_t entries = 0;   ///< images currently retained
  };

  /// The image `cfg` selects: a cached shared build for workload configs, a
  /// fresh uncached build otherwise.  Throws ksim::Error like resolve_input.
  /// Builds are serialized on the cache lock (resolve_input is not meant to
  /// run concurrently with itself); callers holding a returned image keep it
  /// alive independently of the cache.
  std::shared_ptr<const ProgramImage> get(const RunConfig& cfg);

  Stats stats() const;

  /// Drops all retained entries (outstanding shared_ptrs stay valid).
  void clear();

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const ProgramImage>> images_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

} // namespace ksim::api
