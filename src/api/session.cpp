#include "api/session.h"

#include <fstream>
#include <numeric>
#include <sstream>

#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "rtl/rtl_sim.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "kcc/compiler.h"
#include "support/error.h"
#include "support/strings.h"
#include "workloads/build.h"

namespace ksim::api {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

elf::ElfFile build_from_inputs(const RunConfig& cfg) {
  std::vector<elf::ElfFile> objects;
  objects.push_back(kasm::assemble_or_throw(kasm::start_stub_assembly(cfg.isa)));
  for (const std::string& path : cfg.inputs) {
    if (ends_with(path, ".elf")) {
      // Already-linked executables cannot be re-linked.
      throw Error("cannot link an executable: " + path);
    }
    std::string assembly;
    if (ends_with(path, ".c")) {
      kcc::CompileOptions copt;
      copt.file_name = path;
      copt.codegen.default_isa = cfg.isa;
      assembly = kcc::compile_or_throw(read_file(path), copt);
    } else {
      assembly = read_file(path);
    }
    kasm::AsmOptions aopt;
    aopt.file_name = path;
    objects.push_back(kasm::assemble_or_throw(assembly, aopt));
  }
  objects.push_back(kasm::assemble_or_throw(kasm::libc_stub_assembly()));
  kasm::LinkOptions lopt;
  const isa::IsaInfo* isa = isa::kisa().find_isa(cfg.isa);
  check(isa != nullptr, "unknown ISA " + cfg.isa);
  lopt.entry_isa = isa->id;
  return kasm::link_or_throw(objects, lopt);
}

} // namespace

ProgramImage resolve_input(const RunConfig& cfg) {
  if (!cfg.workload.empty())
    return {workloads::build_workload(workloads::by_name(cfg.workload), cfg.isa),
            cfg.workload + "@" + cfg.isa};
  check(!cfg.inputs.empty(), "no input file");
  if (cfg.inputs.size() == 1 && ends_with(cfg.inputs[0], ".elf")) {
    // The entry ISA is baked into the executable; cfg.isa is ignored.
    const std::string bytes = read_file(cfg.inputs[0]);
    return {elf::ElfFile::parse(std::span(
                reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size())),
            cfg.inputs[0]};
  }
  return {build_from_inputs(cfg), cfg.inputs[0] + "@" + cfg.isa};
}

Session::Session(const RunConfig& cfg, const ProgramImage& image) : cfg_(cfg) {
  cfg_.validate();
  // Build the RUN record up front; the executable bytes are only serialized
  // into it when this session will write snapshots.
  run_ = cfg_.ckpt_every != 0 ? cfg_.run_record(image.exe, image.label)
                              : cfg_.run_record(image.label);
  wire(image.exe);
}

Session::Session(const RunConfig& cfg, const ckpt::RunRecord& run,
                 const elf::ElfFile& exe)
    : cfg_(cfg), run_(run) {
  cfg_.validate();
  run_.max_instructions = cfg_.max_instructions;
  wire(exe);
}

void Session::wire(const elf::ElfFile& exe) {
  exe_ = exe;
  sim_ = std::make_unique<sim::Simulator>(isa::kisa(), cfg_.sim_options());
  sim_->load(exe);
  sim_->libc().set_echo(cfg_.echo_output);

  // Static JIT policy (the PR 6 translatability pass): address ranges with a
  // hard obstacle — SIMOP, a statically certain out-of-range access, or a
  // store that may hit the text section — are never handed to the
  // translator.  Computed only when the JIT can actually fire: querying the
  // simulator's normalized options folds in KSIM_NO_JIT and host support,
  // and hook-attached runs (cycle model, trace, profile, op histogram)
  // dispatch no host code at all.
  if (sim_->options().use_jit && cfg_.model == "none" && !cfg_.profile &&
      cfg_.trace_file.empty() && !cfg_.collect_op_stats) {
    const analysis::Program program = analysis::decode_program(exe, isa::kisa());
    const analysis::FuncAnalyses fa = analysis::analyze_functions(program);
    const analysis::TranslatabilityReport report = analysis::classify_translatability(
        exe, program, fa, sim_->state().ram_size());
    constexpr unsigned kVetoMask =
        analysis::kJitSimop | analysis::kJitTrapRisk | analysis::kJitSelfModifying;
    std::vector<jit::VetoRange> vetoes;
    for (const analysis::FuncTranslatability& func : report.functions)
      for (const analysis::BlockTranslatability& block : func.blocks)
        if ((block.reasons & kVetoMask) != 0)
          vetoes.push_back({block.start, block.end});
    sim_->set_jit_policy(std::move(vetoes));
  }

  if (cfg_.model == "ilp") {
    // ILP assumes ideal memory: every access completes in one L1 hit.
    model_ = std::make_unique<cycle::IlpModel>(cfg_.memory.l1.hit_latency);
  } else if (cfg_.model == "aie") {
    memory_ = std::make_unique<cycle::MemoryHierarchy>(cfg_.memory.hierarchy_config());
    model_ = std::make_unique<cycle::AieModel>(memory_.get());
  } else if (cfg_.model == "doe" || cfg_.model == "rtl") {
    memory_ = std::make_unique<cycle::MemoryHierarchy>(cfg_.memory.hierarchy_config());
    model_ = std::make_unique<cycle::DoeModel>(memory_.get());
  } else {
    check(cfg_.model == "none", "unknown cycle model " + cfg_.model);
  }

  if (!cfg_.bp_kind.empty()) {
    predictor_ = cycle::make_predictor(cfg_.bp_kind);
    if (auto* doe = dynamic_cast<cycle::DoeModel*>(model_.get()); doe != nullptr)
      doe->set_branch_prediction(predictor_.get(), cfg_.bp_penalty);
    else if (auto* aie = dynamic_cast<cycle::AieModel*>(model_.get()); aie != nullptr)
      aie->set_branch_prediction(predictor_.get(), cfg_.bp_penalty);
    else
      check(false, "--bp requires --model aie or --model doe");
  }

  if (cfg_.model == "rtl") {
    recorder_ = std::make_unique<rtl::TraceRecorder>();
    sim_->set_cycle_model(recorder_.get());
  } else if (model_ != nullptr) {
    sim_->set_cycle_model(model_.get());
  }
}

analysis::LintResult Session::lint(const analysis::LintOptions& options) const {
  return analysis::run_lint(exe_, isa::kisa(), options);
}

ckpt::Participants Session::participants() {
  ckpt::Participants p;
  p.sim = sim_.get();
  p.model = model_.get();
  p.memory = model_ != nullptr && memory_ != nullptr ? memory_.get() : nullptr;
  p.predictor = predictor_.get();
  return p;
}

std::unique_ptr<Session> Session::resume(const ckpt::Checkpoint& ck,
                                         const ResumeOverrides& o) {
  RunConfig cfg = RunConfig::from_run_record(ck.run);
  // The recorded budget is whatever interrupted the original run; reapplying
  // it would stop the resumed run on the spot (DESIGN.md §5c).
  cfg.max_instructions = o.max_instructions;
  cfg.echo_output = o.echo_output;
  cfg.profile = o.profile;
  cfg.trace_file = o.trace_file;
  cfg.jit_dump_asm = o.jit_dump_asm;
  cfg.ckpt_every = o.ckpt_every;
  cfg.ckpt_dir = o.ckpt_dir;
  cfg.ckpt_keep = o.ckpt_keep;

  const elf::ElfFile exe = elf::ElfFile::parse(ck.run.elf_bytes);
  auto session = std::make_unique<Session>(cfg, ck.run, exe);
  ckpt::apply_checkpoint(ck, session->participants());
  return session;
}

void Session::set_progress_hook(uint64_t every_instructions,
                                std::function<bool(Session&)> fn) {
  check(every_instructions != 0 || cfg_.ckpt_every != 0,
        "progress hook needs a cadence (or a configured ckpt_every)");
  progress_every_ = every_instructions != 0 ? every_instructions : cfg_.ckpt_every;
  progress_fn_ = std::move(fn);
}

void Session::install_periodic_hook() {
  const uint64_t sink_every = cfg_.ckpt_every;
  const uint64_t prog_every = progress_fn_ ? progress_every_ : 0;
  if (sink_every == 0 && prog_every == 0) return;
  if (sink_every != 0 && !sink_.has_value()) {
    check(!run_.elf_bytes.empty(),
          "internal: checkpointing session lacks executable bytes");
    sink_.emplace(cfg_.ckpt_dir, cfg_.ckpt_keep);
  }
  // One simulator hook serves both consumers: it fires at the gcd of the
  // two cadences and each consumer advances its own next-due threshold.
  // The hook only observes state at safe boundaries, so its cadence never
  // affects simulated state or statistics.
  const uint64_t cadence = sink_every != 0 && prog_every != 0
                               ? std::gcd(sink_every, prog_every)
                               : (sink_every != 0 ? sink_every : prog_every);
  const uint64_t done = sim_->stats().instructions;
  const auto next_due = [done](uint64_t every) {
    return every == 0 ? UINT64_MAX : (done / every + 1) * every;
  };
  next_sink_ = next_due(sink_every);
  next_progress_ = next_due(prog_every);
  sim_->set_checkpoint_hook(cadence, [this, sink_every,
                                      prog_every](sim::Simulator& s) {
    const uint64_t n = s.stats().instructions;
    if (n >= next_sink_) {
      sink_->write(run_, participants()); // passive; never stops the run
      next_sink_ = (n / sink_every + 1) * sink_every;
    }
    bool stop = false;
    if (n >= next_progress_) {
      stop = progress_fn_(*this);
      next_progress_ = (n / prog_every + 1) * prog_every;
    }
    return stop;
  });
}

std::string Session::snapshot_now() {
  check(!cfg_.ckpt_dir.empty(), "snapshot_now requires a checkpoint directory");
  check(!run_.elf_bytes.empty(),
        "internal: checkpointing session lacks executable bytes");
  if (!sink_.has_value()) sink_.emplace(cfg_.ckpt_dir, cfg_.ckpt_keep);
  return sink_->write(run_, participants());
}

sim::StopReason Session::run() {
  if (!cfg_.trace_file.empty() && trace_ == nullptr) {
    trace_stream_.emplace(cfg_.trace_file);
    check(trace_stream_->good(), "cannot write " + cfg_.trace_file);
    trace_ = std::make_unique<sim::TraceWriter>(*trace_stream_);
    sim_->set_trace(trace_.get());
  }
  if (!cfg_.jit_dump_asm.empty() && !jit_dump_stream_.has_value()) {
    jit_dump_stream_.emplace(cfg_.jit_dump_asm);
    check(jit_dump_stream_->good(), "cannot write " + cfg_.jit_dump_asm);
    sim_->set_jit_dump(&*jit_dump_stream_);
  }
  if (cfg_.profile) sim_->set_profiler(&profiler_);
  install_periodic_hook();
  return sim_->run();
}

Report Session::report(sim::StopReason reason) const {
  Report r;
  r.target = run_.workload;
  r.model = cfg_.model;
  r.stop_reason = sim::to_string(reason);
  r.exit_code = sim_->exit_code();
  r.stats = sim_->stats();
  r.superblocks = sim_->options().use_superblocks;
  r.jit = sim_->options().use_jit;
  r.output_bytes = sim_->libc().output().size();
  if (recorder_ != nullptr) {
    // The DOE pipeline recorded a full operation trace; replay it through
    // the cycle-exact RTL reference for the Table II comparison.
    rtl::RtlSimulator rtl_sim;
    r.rtl_reference = true;
    r.has_cycles = true;
    r.cycles = rtl_sim.run(recorder_->trace()).cycles;
  } else if (model_ != nullptr) {
    r.model_display = model_->name();
    r.has_cycles = true;
    r.cycles = model_->cycles();
    r.ops_per_cycle = model_->ops_per_cycle();
  }
  if (memory_ != nullptr) {
    r.has_memory = true;
    r.memory = cfg_.memory;
  }
  if (predictor_ != nullptr) {
    r.has_predictor = true;
    r.bp_kind = predictor_->name();
    r.bp_branches = predictor_->stats().branches;
    r.bp_mispredictions = predictor_->stats().mispredictions;
    r.bp_penalty = cfg_.bp_penalty;
  }
  return r;
}

std::string render_op_histogram(const sim::Simulator& simulator) {
  std::string out = "[ksim] operation histogram:\n";
  const auto hist = simulator.op_histogram();
  for (size_t i = 0; i < hist.size() && i < 16; ++i)
    out += strf("  %-14s %12llu (%.1f%%)\n", hist[i].first->name.c_str(),
                static_cast<unsigned long long>(hist[i].second),
                100.0 * static_cast<double>(hist[i].second) /
                    static_cast<double>(simulator.stats().operations));
  return out;
}

std::string render_profile(const sim::Profiler& profiler) {
  std::string out = "[ksim] profile (cycles instructions calls function):\n";
  for (const sim::FuncProfile& p : profiler.report())
    out += strf("  %10llu %10llu %8llu  %s\n",
                static_cast<unsigned long long>(p.cycles),
                static_cast<unsigned long long>(p.instructions),
                static_cast<unsigned long long>(p.calls), p.name.c_str());
  return out;
}

} // namespace ksim::api
