// libksim — the embeddable simulation session facade (DESIGN.md §7).
//
// A Session owns one fully wired simulation: simulator core, optional cycle
// model with its memory hierarchy, optional branch predictor, optional RTL
// trace recorder, profiler and trace writer, all constructed from a single
// RunConfig.  `ksim run`, `ksim resume`, `ksim replay`, `ksim sweep` and the
// benches are thin clients of this type; embedders link ksim_api and drive
// it directly.
//
// Concurrency: Sessions are fully isolated — every piece of mutable state
// (architectural state, emulated libc heap/rand/output, decode-cache arenas,
// superblock graph, statistics, cycle-model state) lives inside the Session.
// Any number of Sessions may run on different threads at once, sharing only
// immutable inputs: the process-wide ISA set (isa::kisa(), built once and
// read-only afterwards) and, in sweeps, pre-built ProgramImages.  One Session
// must not be used from two threads simultaneously.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "analysis/lint.h"
#include "api/report.h"
#include "api/run_config.h"
#include "ckpt/checkpoint.h"
#include "cycle/branch_predict.h"
#include "cycle/models.h"
#include "rtl/trace_recorder.h"
#include "sim/simulator.h"

namespace ksim::api {

/// One resolved program: the linked executable plus a display label
/// ("<workload>@<ISA>", "<file>@<ISA>" or the .elf path) used in reports and
/// recorded into checkpoints.  Immutable once built; concurrent Sessions may
/// load the same image.
struct ProgramImage {
  elf::ElfFile exe;
  std::string label;
};

/// Builds the executable `cfg` selects: a built-in workload, a pre-linked
/// .elf, or MiniC/assembly inputs compiled and linked for cfg.isa.  Pure
/// (no global state is touched beyond the lazily built ISA set), but NOT
/// meant to run concurrently with itself — sweep builds images up front.
ProgramImage resolve_input(const RunConfig& cfg);

/// Host-side knobs a resumed session overlays on the configuration recorded
/// in the checkpoint (Session::resume).  Simulation-relevant fields come
/// from the RUN record and cannot be overridden — that is what makes the
/// resumed run bit-identical.
struct ResumeOverrides {
  /// New absolute instruction budget (total since program start, the same
  /// axis --max-instr counts on).  The budget recorded in the checkpoint is
  /// what interrupted the original run, so it is never reapplied; 0 runs to
  /// completion.  A preempted service job resumes in bounded slices by
  /// passing its admission-time budget here.
  uint64_t max_instructions = 0;
  bool echo_output = true;
  bool profile = false;
  std::string trace_file;
  std::string jit_dump_asm;
  uint64_t ckpt_every = 0;  ///< continue periodic snapshotting (with dir)
  std::string ckpt_dir;
  unsigned ckpt_keep = 3;
};

class Session {
public:
  /// Resolves cfg's program and wires the full session.
  explicit Session(const RunConfig& cfg) : Session(cfg, resolve_input(cfg)) {}

  /// Wires a session around a pre-resolved (possibly shared) image.
  Session(const RunConfig& cfg, const ProgramImage& image);

  /// Rebuilds the session a checkpoint was taken under: `cfg` must agree
  /// with `run` on all simulation-relevant fields (start from
  /// RunConfig::from_run_record and overlay host-side fields only); `run`
  /// keeps the original label + executable bytes for future snapshots.
  Session(const RunConfig& cfg, const ckpt::RunRecord& run,
          const elf::ElfFile& exe);

  Session(Session&&) = delete; // hooks capture `this`; sessions stay put

  /// Rebuilds and restores the session `ck` was taken from: the executable
  /// and every simulation-relevant knob come from the RUN record, `o`
  /// supplies the host-side overlay.  This is the one resume path shared by
  /// `ksim resume` and the ksimd scheduler's preemption/eviction cycle.
  static std::unique_ptr<Session> resume(const ckpt::Checkpoint& ck,
                                         const ResumeOverrides& o);

  /// Runs to completion (or the configured bound), honouring the config's
  /// trace/profiler/periodic-checkpoint settings.  May be called again to
  /// continue after StopReason::InstructionLimit or ::Checkpoint.
  sim::StopReason run();

  /// Cooperative progress/preemption hook: during run(), `fn` is invoked at
  /// the first block/step boundary after every `every_instructions` executed
  /// instructions — the same safe points periodic checkpointing uses, so a
  /// hook that returns true stops the run with StopReason::Checkpoint in a
  /// state that snapshots and resumes bit-identically.  Returning false
  /// continues.  `every_instructions` == 0 aligns the hook with the config's
  /// ckpt_every cadence (one of the two must be non-zero).  When both a
  /// periodic sink and a progress hook are active they fire independently at
  /// their own cadences (the underlying simulator hook runs at the gcd, so
  /// prefer equal or multiple cadences).
  void set_progress_hook(uint64_t every_instructions,
                         std::function<bool(Session&)> fn);

  /// Writes a checkpoint right now (e.g. the final snapshot on SIGINT, or a
  /// service eviction to disk).  Requires the config's ckpt_dir; returns the
  /// path written.  Only valid at a stopped boundary (before run(), or after
  /// it returned) — never from arbitrary signal context.
  std::string snapshot_now();

  /// The machine-readable summary of the session's state after run().
  Report report(sim::StopReason reason) const;

  /// Runs the klint whole-program static analysis over this session's
  /// executable — the same pipeline as `ksim lint`, including the
  /// TranslatabilityReport the superblock JIT will consume.  Independent of
  /// run(): may be called before, after, or instead of simulating.  Sweep
  /// manifests use it to gate points on lint cleanliness
  /// (SweepSpec::require_lint_clean).
  analysis::LintResult lint(const analysis::LintOptions& options = {}) const;

  /// Trap/decode-error diagnostics (simulator error report pass-through).
  std::string error_report() const { return sim_->error_report(); }
  int exit_code() const { return sim_->exit_code(); }

  const RunConfig& config() const { return cfg_; }
  const std::string& label() const { return run_.workload; }
  /// The checkpoint RUN section for this session.  elf_bytes is only
  /// populated when the session snapshots (periodic checkpointing or the
  /// RunRecord constructor); other fields are always valid.
  const ckpt::RunRecord& run_record() const { return run_; }

  sim::Simulator& simulator() { return *sim_; }
  const sim::Simulator& simulator() const { return *sim_; }
  cycle::CycleModel* model() { return model_.get(); }
  const sim::Profiler* profiler() const {
    return cfg_.profile ? &profiler_ : nullptr;
  }

  /// The checkpointable objects of this session (kckpt).
  ckpt::Participants participants();

private:
  void wire(const elf::ElfFile& exe);
  void install_periodic_hook();

  RunConfig cfg_;
  ckpt::RunRecord run_; ///< label + config (+ elf bytes when checkpointing)
  elf::ElfFile exe_;    ///< the loaded executable, retained for lint()

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<cycle::MemoryHierarchy> memory_;
  std::unique_ptr<cycle::CycleModel> model_;
  std::unique_ptr<cycle::BranchPredictor> predictor_;
  std::unique_ptr<rtl::TraceRecorder> recorder_; ///< model == "rtl" only

  sim::Profiler profiler_;
  std::optional<std::ofstream> trace_stream_;
  std::optional<std::ofstream> jit_dump_stream_;
  std::unique_ptr<sim::TraceWriter> trace_;
  std::optional<ckpt::CheckpointSink> sink_;

  // Progress/preemption hook state (set_progress_hook).
  uint64_t progress_every_ = 0;
  std::function<bool(Session&)> progress_fn_;
  uint64_t next_sink_ = UINT64_MAX;
  uint64_t next_progress_ = UINT64_MAX;
};

/// Text renderings of the per-run extras the CLI prints on demand.
std::string render_op_histogram(const sim::Simulator& simulator);
std::string render_profile(const sim::Profiler& profiler);

} // namespace ksim::api
