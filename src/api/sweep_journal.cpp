#include "api/sweep_journal.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/byte_stream.h"
#include "support/error.h"
#include "support/strings.h"

namespace fs = std::filesystem;

namespace ksim::api {

namespace {

using support::ByteReader;
using support::ByteWriter;

constexpr char kMagic[8] = {'K', 'S', 'I', 'M', 'S', 'W', 'P', 'J'};

std::string journal_path(const std::string& dir) {
  return (fs::path(dir) / kJournalFileName).string();
}

std::string manifest_path(const std::string& dir) {
  return (fs::path(dir) / kManifestFileName).string();
}

std::vector<uint8_t> encode_outcome(const SweepOutcome& o) {
  ByteWriter w;
  w.u64(o.point_index);
  w.u8(o.ok ? 1 : 0);
  w.str(o.error);
  w.str(o.stop_reason);
  w.u32(static_cast<uint32_t>(o.exit_code));
  w.u64(o.instructions);
  w.u64(o.operations);
  w.u8(o.has_cycles ? 1 : 0);
  w.u64(o.cycles);
  uint64_t opc_bits = 0; // raw IEEE-754 bits: the JSON re-render is exact
  static_assert(sizeof(opc_bits) == sizeof(o.ops_per_cycle));
  std::memcpy(&opc_bits, &o.ops_per_cycle, sizeof(opc_bits));
  w.u64(opc_bits);
  w.u64(o.output_bytes);
  return w.take();
}

SweepOutcome decode_outcome(std::span<const uint8_t> payload) {
  ByteReader r(payload, "sweep journal record");
  SweepOutcome o;
  o.point_index = r.u64();
  o.ok = r.u8() != 0;
  o.error = r.str();
  o.stop_reason = r.str();
  o.exit_code = static_cast<int32_t>(r.u32());
  o.instructions = r.u64();
  o.operations = r.u64();
  o.has_cycles = r.u8() != 0;
  o.cycles = r.u64();
  const uint64_t opc_bits = r.u64();
  std::memcpy(&o.ops_per_cycle, &opc_bits, sizeof(o.ops_per_cycle));
  o.output_bytes = r.u64();
  r.expect_end();
  return o;
}

void write_text_atomic(const std::string& path, const std::string& text) {
  const fs::path target(path);
  fs::path tmp(target);
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    check(out.good(), strf("cannot create '%s'", tmp.string().c_str()));
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    check(out.good(), strf("error writing '%s'", tmp.string().c_str()));
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error(strf("cannot move manifest into place at '%s'", path.c_str()));
  }
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(in.good(), strf("cannot open '%s'", path.c_str()));
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  check(!in.bad(), strf("error reading '%s'", path.c_str()));
  return text;
}

} // namespace

SweepJournal SweepJournal::create(const std::string& dir,
                                  const std::string& manifest_text) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  check(!ec, strf("cannot create sweep directory '%s'", dir.c_str()));
  write_text_atomic(manifest_path(dir), manifest_text);

  SweepJournal j;
  j.dir_ = dir;
  j.manifest_text_ = manifest_text;
  j.mutex_ = std::make_unique<std::mutex>();
  j.file_.reset(std::fopen(journal_path(dir).c_str(), "wb"));
  check(j.file_ != nullptr,
        strf("cannot create '%s'", journal_path(dir).c_str()));
  ByteWriter header;
  header.bytes(reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic));
  header.u32(kJournalVersion);
  header.u32(support::crc32(manifest_text.data(), manifest_text.size()));
  const std::vector<uint8_t> bytes = header.take();
  check(std::fwrite(bytes.data(), 1, bytes.size(), j.file_.get()) ==
                bytes.size() &&
            std::fflush(j.file_.get()) == 0,
        strf("error writing '%s'", journal_path(dir).c_str()));
  return j;
}

SweepJournal SweepJournal::resume(const std::string& dir) {
  SweepJournal j;
  j.dir_ = dir;
  j.manifest_text_ = read_text(manifest_path(dir));
  j.mutex_ = std::make_unique<std::mutex>();

  const std::string path = journal_path(dir);
  const std::string raw = read_text(path);
  const auto* data = reinterpret_cast<const uint8_t*>(raw.data());
  check(raw.size() >= sizeof(kMagic) + 8 &&
            std::memcmp(data, kMagic, sizeof(kMagic)) == 0,
        strf("'%s' is not a ksim sweep journal", path.c_str()));
  ByteReader header(std::span(data + sizeof(kMagic), 8), "sweep journal header");
  const uint32_t version = header.u32();
  check(version == kJournalVersion,
        strf("unsupported sweep journal version %u (this build reads "
             "version %u)", version, kJournalVersion));
  const uint32_t manifest_crc = header.u32();
  check(manifest_crc == support::crc32(j.manifest_text_.data(),
                                       j.manifest_text_.size()),
        strf("'%s' does not match %s/manifest.json (manifest edited after "
             "the sweep started?)", path.c_str(), dir.c_str()));

  // Records until EOF.  A torn *tail* (the record being appended when the
  // sweep was killed) is silently discarded; a bad checksum with further
  // bytes after it means real corruption and is an error.
  size_t pos = sizeof(kMagic) + 8;
  while (pos < raw.size()) {
    if (raw.size() - pos < 8) break; // torn length/CRC prefix
    ByteReader prefix(std::span(data + pos, 8), "sweep journal record");
    const uint32_t size = prefix.u32();
    const uint32_t crc = prefix.u32();
    if (raw.size() - pos - 8 < size) break; // torn payload
    const std::span<const uint8_t> payload(data + pos + 8, size);
    if (support::crc32(payload.data(), payload.size()) != crc) {
      check(pos + 8 + size == raw.size(),
            strf("'%s': record checksum mismatch mid-file", path.c_str()));
      break; // torn final record
    }
    j.completed_.push_back(decode_outcome(payload));
    pos += 8 + size;
  }

  // Drop the torn tail before appending: without the truncate, new records
  // would land after the partial bytes and a second resume would see a
  // checksum mismatch mid-file.
  if (pos < raw.size()) {
    std::error_code ec;
    fs::resize_file(path, pos, ec);
    check(!ec, strf("cannot truncate torn tail of '%s'", path.c_str()));
  }
  j.file_.reset(std::fopen(path.c_str(), "ab"));
  check(j.file_ != nullptr, strf("cannot append to '%s'", path.c_str()));
  return j;
}

void SweepJournal::append(const SweepOutcome& outcome) {
  const std::vector<uint8_t> payload = encode_outcome(outcome);
  ByteWriter record;
  record.u32(static_cast<uint32_t>(payload.size()));
  record.u32(support::crc32(payload.data(), payload.size()));
  record.bytes(payload.data(), payload.size());
  const std::vector<uint8_t> bytes = record.take();
  const std::lock_guard<std::mutex> lock(*mutex_);
  check(std::fwrite(bytes.data(), 1, bytes.size(), file_.get()) ==
                bytes.size() &&
            std::fflush(file_.get()) == 0,
        strf("error appending to sweep journal in '%s'", dir_.c_str()));
}

} // namespace ksim::api
