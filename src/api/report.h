// libksim — the versioned machine-readable run report (DESIGN.md §7).
//
// Every JSON document the toolchain emits carries the same two header keys,
// always first and in this order:
//   "schema":         the document kind ("ksim.run", "ksim.sweep",
//                     "ksim.lint", "ksim.bench")
//   "schema_version": an integer bumped on any incompatible change
// and all keys appear in a fixed, documented order (the writers are
// insertion-ordered), so reports diff cleanly and can be parsed by streaming
// consumers.
#pragma once

#include <cstdint>
#include <string>

#include "cycle/mem_hierarchy.h"
#include "sim/simulator.h"
#include "support/json.h"

namespace ksim::api {

/// Version of all ksim.* JSON schemas (bumped together; per-document kinds
/// are distinguished by the "schema" key).
inline constexpr int kSchemaVersion = support::kJsonSchemaVersion;

/// Everything `ksim run`/`resume` report about one finished simulation —
/// the value behind both the human-readable stderr summary and the
/// "ksim.run" JSON document.
struct Report {
  std::string target;      ///< "<workload>@<ISA>" or file label
  std::string model;       ///< configured model name ("none" if bare)
  std::string model_display; ///< CycleModel::name() for the text report ("DOE")
  std::string stop_reason; ///< sim::to_string(StopReason)
  int exit_code = 0;

  sim::SimStats stats;     ///< simulator counters at stop time
  bool superblocks = true; ///< engine enabled (the text line is printed even
                           ///< when its counters are zero)
  bool jit = true;         ///< kjit enabled (normalized: reflects host
                           ///< support and KSIM_NO_JIT, like the counters)

  bool has_cycles = false; ///< a cycle model (or the RTL reference) ran
  bool rtl_reference = false; ///< cycles come from the replayed RTL trace
  uint64_t cycles = 0;
  double ops_per_cycle = 0.0;

  bool has_predictor = false;
  std::string bp_kind;
  uint64_t bp_branches = 0;
  uint64_t bp_mispredictions = 0;
  int bp_penalty = 0;

  bool has_memory = false; ///< a memory hierarchy was attached (aie/doe/rtl)
  cycle::MemGeometry memory;

  uint64_t output_bytes = 0; ///< simulated-stdout size
};

/// The "ksim.run" JSON document (schema_version kSchemaVersion).  Key order:
/// schema, schema_version, target, model, stop_reason, exit_code,
/// instructions, operations, decodes, cache_lookups, pred_hits, isa_switches,
/// libc_calls, blocks_formed, block_dispatches, block_chain_hits,
/// jit_blocks_translated, jit_dispatches, jit_side_exits, jit_bailouts,
/// jit_cache_flushes, output_bytes, then the optional
/// "cycles"/"ops_per_cycle" pair (cycle model attached), the optional
/// "memory" geometry object (memory hierarchy attached — schema_version 3)
/// and the optional "branch_predictor" object.  The jit_* keys were appended
/// in order-preserving, additive changes (same schema_version); they count
/// this process's translation activity only.
std::string render_report_json(const Report& r);

/// The classic `[ksim] ...` stderr summary lines for the same report.
std::string render_report_text(const Report& r);

/// Writes `"<key>": {...}` for a memory geometry with the fixed key order
/// line_size, l1{sets,ways,hit_latency}, l2{sets,ways,hit_latency}, ports,
/// miss_latency — shared by ksim.run, ksim.sweep, checkpoints' JSON echoes
/// and the ksimd submit config.
void write_mem_geometry(support::JsonWriter& w, const std::string& key,
                        const cycle::MemGeometry& g);

/// Parses the nested `"memory"` object written by write_mem_geometry.
/// Missing keys keep their defaults; unknown keys and non-numeric values
/// throw ksim::ConfigError.  `context` prefixes diagnostics ("manifest",
/// "submit config").
cycle::MemGeometry mem_geometry_from_json(const support::JsonValue& v,
                                          const std::string& context);

/// Applies one deprecated flat memory key ("mem_line_size", "mem_l1_sets",
/// "mem_l1_ways", "mem_l1_latency", "mem_l2_sets", "mem_l2_ways",
/// "mem_l2_latency", "mem_ports", "mem_miss_latency") to a geometry, with a
/// one-per-process deprecation warning naming the nested replacement.
/// Returns false when `key` is not a flat memory key; throws
/// ksim::ConfigError when the value is not a non-negative integer.
/// `context` prefixes diagnostics.
bool apply_flat_mem_key(cycle::MemGeometry& g, const std::string& key,
                        const support::JsonValue& value,
                        const std::string& context);

} // namespace ksim::api
