#include "api/image_cache.h"

namespace ksim::api {

std::shared_ptr<const ProgramImage> ImageCache::get(const RunConfig& cfg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cfg.workload.empty()) {
    // File inputs are rebuilt every time; their contents are not stable.
    ++misses_;
    return std::make_shared<const ProgramImage>(resolve_input(cfg));
  }
  const std::string key = cfg.workload + "@" + cfg.isa;
  if (const auto it = images_.find(key); it != images_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto image = std::make_shared<const ProgramImage>(resolve_input(cfg));
  images_.emplace(key, image);
  return image;
}

ImageCache::Stats ImageCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, images_.size()};
}

void ImageCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  images_.clear();
}

} // namespace ksim::api
