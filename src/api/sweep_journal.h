// kdse — the resumable-sweep journal (DESIGN.md §11).
//
// A journaled sweep owns a directory:
//   <dir>/manifest.json   the canonical manifest the sweep runs (written
//                         atomically at creation; --resume re-reads it, so a
//                         resumed sweep can never drift from the original)
//   <dir>/journal.kswpj   append-only completed-point records
//
// The journal is the sweep analogue of kckpt: binary, versioned, CRC'd, and
// tolerant of a torn tail.  Each record carries one point's *reported
// outcome* — exactly the fields render_sweep_json() serializes — keyed by the
// point's index in deterministic spec order.  A resumed sweep pre-fills those
// points, skips them in the worker phase, and therefore produces final JSON
// byte-identical to an uninterrupted run (the ksim.sweep document contains no
// wall-clock fields; timing is reported on stderr and in BENCH files only).
//
// Crash model: records are appended with a single buffered write + flush
// under a mutex.  A kill can leave at most one torn record at the tail;
// readers stop at the first short or checksum-failing record and the resumed
// sweep simply re-runs that point.
//
// File layout (little-endian):
//   "KSIMSWPJ"  8-byte magic
//   u32         journal format version (kJournalVersion)
//   u32         CRC-32 of the manifest text (binds journal to manifest)
//   records:    u32 payload size | u32 payload CRC-32 | payload
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ksim::api {

inline constexpr uint32_t kJournalVersion = 1;
inline constexpr char kJournalFileName[] = "journal.kswpj";
inline constexpr char kManifestFileName[] = "manifest.json";

/// One completed sweep point as the journal stores it: the reported outcome,
/// nothing host-volatile.  Mirrors what render_sweep_json() reads per point.
struct SweepOutcome {
  uint64_t point_index = 0; ///< index into expand_points() spec order
  bool ok = false;
  std::string error;        ///< failure diagnostic when !ok
  std::string stop_reason;
  int32_t exit_code = 0;
  uint64_t instructions = 0;
  uint64_t operations = 0;
  bool has_cycles = false;
  uint64_t cycles = 0;
  double ops_per_cycle = 0.0; ///< stored as raw IEEE-754 bits (exact)
  uint64_t output_bytes = 0;
};

/// The journal for one sweep directory.  Thread-safe append; reading happens
/// once, at open time, before any worker starts.
class SweepJournal {
public:
  /// Starts a fresh journal: creates `dir`, writes the manifest atomically
  /// and truncates the record file.  Throws ksim::Error on I/O failure.
  static SweepJournal create(const std::string& dir,
                             const std::string& manifest_text);

  /// Re-opens an interrupted sweep: reads back `dir`/manifest.json, verifies
  /// the journal header binds to it, and loads every intact record (a torn
  /// tail record is discarded; corruption before the tail is an error).
  static SweepJournal resume(const std::string& dir);

  SweepJournal(SweepJournal&&) noexcept = default;
  SweepJournal& operator=(SweepJournal&&) noexcept = default;
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  const std::string& dir() const { return dir_; }
  const std::string& manifest_text() const { return manifest_text_; }

  /// Records loaded by resume() (empty for a fresh journal), journal order.
  const std::vector<SweepOutcome>& completed() const { return completed_; }

  /// Appends one finished point and flushes it to the OS.  Thread-safe.
  void append(const SweepOutcome& outcome);

private:
  SweepJournal() = default;

  struct FileCloser {
    void operator()(std::FILE* f) const { std::fclose(f); }
  };

  std::string dir_;
  std::string manifest_text_;
  std::vector<SweepOutcome> completed_;
  std::unique_ptr<std::FILE, FileCloser> file_; ///< open for append
  std::unique_ptr<std::mutex> mutex_; ///< pointer: journal stays movable
};

} // namespace ksim::api
