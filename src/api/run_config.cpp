#include "api/run_config.h"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>

#include "cycle/branch_predict.h"
#include "isa/kisa.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::api {

namespace {

bool known_model(const std::string& model) {
  return model == "none" || model == "ilp" || model == "aie" ||
         model == "doe" || model == "rtl";
}

} // namespace

void RunConfig::validate() const {
  check(isa::kisa().find_isa(isa) != nullptr, "unknown ISA " + isa);
  check(known_model(model), "unknown cycle model " + model);
  if (!bp_kind.empty()) {
    check(model == "aie" || model == "doe",
          "--bp requires --model aie or --model doe");
    // make_predictor throws on unknown kinds; probe it now so configuration
    // errors surface before any compilation work.
    (void)cycle::make_predictor(bp_kind);
  }
  check(bp_penalty >= 0, "--bp-penalty expects a cycle count");
  memory.validate(); // throws ConfigError (exit-2) on impossible geometries
  if (ckpt_every != 0 || !ckpt_dir.empty()) {
    check(ckpt_every != 0 && !ckpt_dir.empty(),
          "--checkpoint-every and --ckpt-dir must be used together");
    check(model != "rtl",
          "--model rtl records a full operation trace and cannot be checkpointed");
  }
  // No cache/prediction/superblock combination check here: the simulator
  // core normalizes impossible combinations itself (prediction and
  // superblocks silently degrade when the decode cache is off), matching
  // the historical `--no-decode-cache` CLI behaviour.
}

sim::SimOptions RunConfig::sim_options() const {
  sim::SimOptions sopt;
  sopt.use_decode_cache = use_decode_cache;
  sopt.use_prediction = use_prediction;
  sopt.use_superblocks = use_superblocks;
  sopt.use_jit = use_jit;
  sopt.collect_op_stats = collect_op_stats;
  sopt.max_instructions = max_instructions;
  sopt.libc_seed = seed;
  return sopt;
}

ckpt::RunRecord RunConfig::run_record(const elf::ElfFile& exe,
                                      const std::string& label) const {
  ckpt::RunRecord run = run_record(label);
  run.elf_bytes = exe.serialize();
  return run;
}

ckpt::RunRecord RunConfig::run_record(const std::string& label) const {
  ckpt::RunRecord run;
  run.workload = label;
  run.model = model == "none" ? "" : model;
  run.bp_kind = bp_kind;
  run.bp_penalty = static_cast<uint32_t>(bp_penalty);
  run.seed = seed;
  run.use_decode_cache = use_decode_cache ? 1 : 0;
  run.use_prediction = use_prediction ? 1 : 0;
  run.use_superblocks = use_superblocks ? 1 : 0;
  run.use_jit = use_jit ? 1 : 0;
  run.collect_op_stats = collect_op_stats ? 1 : 0;
  run.max_instructions = max_instructions;
  run.memory = memory;
  return run;
}

RunConfig RunConfig::from_run_record(const ckpt::RunRecord& run) {
  RunConfig cfg;
  cfg.model = run.model.empty() ? "none" : run.model;
  cfg.bp_kind = run.bp_kind;
  cfg.bp_penalty = static_cast<int>(run.bp_penalty);
  cfg.seed = run.seed;
  cfg.use_decode_cache = run.use_decode_cache != 0;
  cfg.use_prediction = run.use_prediction != 0;
  cfg.use_superblocks = run.use_superblocks != 0;
  cfg.use_jit = run.use_jit != 0;
  cfg.collect_op_stats = run.collect_op_stats != 0;
  cfg.max_instructions = run.max_instructions;
  cfg.memory = run.memory;
  return cfg;
}

std::vector<EnvOverride> apply_env_overrides(RunConfig& cfg) {
  std::vector<EnvOverride> applied;
  const auto flag = [&](const char* var, bool& field, const char* replacement) {
    if (std::getenv(var) == nullptr) return;
    field = false;
    applied.push_back({var, replacement});
  };
  flag("KSIM_NO_SUPERBLOCKS", cfg.use_superblocks, "--no-superblocks");
  flag("KSIM_NO_DECODE_CACHE", cfg.use_decode_cache, "--no-decode-cache");
  flag("KSIM_NO_PREDICTION", cfg.use_prediction, "--no-prediction");
  flag("KSIM_NO_JIT", cfg.use_jit, "--no-jit");
  if (const char* seed = std::getenv("KSIM_SEED"); seed != nullptr) {
    int64_t v = 0;
    check(parse_int(seed, v) && v >= 0 && v <= INT64_C(0xFFFFFFFF),
          "KSIM_SEED expects a 32-bit value");
    cfg.seed = static_cast<uint32_t>(v);
    applied.push_back({"KSIM_SEED", "--seed"});
  }
  return applied;
}

void warn_deprecated(const std::string& what, const std::string& replacement) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  const std::lock_guard<std::mutex> lock(mutex);
  if (!warned.insert(what).second) return;
  std::cerr << strf("[ksim] warning: %s is deprecated; use %s instead\n",
                    what.c_str(), replacement.c_str());
}

void warn_env_overrides(const std::vector<EnvOverride>& overrides) {
  for (const EnvOverride& o : overrides) warn_deprecated(o.var, o.replacement);
}

} // namespace ksim::api
