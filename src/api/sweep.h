// ksweep — the parallel multi-configuration sweep engine (DESIGN.md §7).
//
// The paper's headline results are sweeps: Figure 4 runs the benchmark
// applications across five ISA configurations against the §VI-A ILP model,
// Table II compares DOE against RTL across configurations.  A SweepSpec
// expands (workloads × ISA configs × cycle models) into independent
// Sessions; run_sweep() builds every program image once up front (immutable,
// shared by all points of the same workload/ISA pair), then executes the
// points on a pool of worker threads pulling from a shared work queue —
// every idle worker steals the next pending point, so long points (DOE on
// aes) never serialize behind short ones.
//
// Determinism: a sweep point is the exact Session a serial `ksim run` would
// construct for the same configuration; the simulator has no global mutable
// state (see session.h), so per-point statistics and cycle counts are
// bit-identical to serial runs regardless of thread count or completion
// order.  Results are reported in spec order, never completion order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "api/report.h"
#include "api/run_config.h"

namespace ksim::api {

/// The sweep grid: every workload × ISA × model combination becomes one
/// point.  `base` supplies everything else (engine switches, seed, bounds);
/// its program-selection and model fields are ignored.
struct SweepSpec {
  std::vector<std::string> workloads; ///< built-in workload names
  std::vector<std::string> isas;      ///< "RISC", "VLIW2", ...
  std::vector<std::string> models;    ///< "none", "ilp", "aie", "doe" (no rtl)
  RunConfig base;
  int threads = 1;
  /// When set, every (workload, ISA) image is linted (analysis::run_lint)
  /// during the serial build phase; points whose image has lint findings
  /// fail with a "lint:" diagnostic instead of simulating.  Notes do not
  /// affect cleanliness, matching `ksim lint` exit semantics.
  bool require_lint_clean = false;

  /// Throws ksim::Error on empty dimensions, unknown names, rtl, threads < 1.
  void validate() const;

  /// Parses a JSON manifest:
  ///   {"workloads": ["cjpeg", ...], "isas": ["RISC", ...],
  ///    "models": ["ilp", ...], "threads": 8, "seed": 1,
  ///    "max_instructions": 0, "require_lint_clean": true}
  /// threads/seed/max_instructions/require_lint_clean are optional.
  /// `origin` names the file in diagnostics.
  static SweepSpec from_manifest(const std::string& json_text,
                                 const std::string& origin);
};

/// One expanded grid point and (after run_sweep) its outcome.
struct SweepPoint {
  std::string workload;
  std::string isa;
  std::string model;
  bool ok = false;
  std::string error;   ///< failure diagnostic when !ok
  Report report;       ///< valid when ok
  double wall_seconds = 0.0;
};

struct SweepResult {
  std::vector<SweepPoint> points; ///< spec order (workload-major)
  int threads = 1;                ///< workers actually used
  double wall_seconds = 0.0;      ///< whole sweep, image building included
  size_t failed = 0;

  double points_per_second() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(points.size()) / wall_seconds;
  }
};

/// Progress callback: invoked once per finished point (under a lock, from
/// worker threads) with the completed point and the done/total counts.
using SweepProgress = std::function<void(const SweepPoint&, size_t, size_t)>;

/// Expands the spec in deterministic workload-major order (workload, then
/// ISA, then model) — the order points and reports are emitted in.
std::vector<SweepPoint> expand_points(const SweepSpec& spec);

/// Runs the whole sweep.  A point that traps or errors is recorded as
/// !ok with its diagnostic; the sweep always completes.  Throws only on
/// spec/setup errors (validate, image building).
SweepResult run_sweep(const SweepSpec& spec, const SweepProgress& progress = {});

/// The "ksim.sweep" JSON document (schema_version kSchemaVersion): header,
/// grid dimensions, throughput, then one entry per point in spec order.
std::string render_sweep_json(const SweepSpec& spec, const SweepResult& result);

/// Figure-4-style text matrix: one table per model, workloads down,
/// ISA configurations across, ops/cycle in the cells (cycles for "none").
std::string render_sweep_table(const SweepSpec& spec, const SweepResult& result);

} // namespace ksim::api
