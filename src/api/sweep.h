// ksweep — the parallel multi-configuration sweep engine (DESIGN.md §7).
//
// The paper's headline results are sweeps: Figure 4 runs the benchmark
// applications across five ISA configurations against the §VI-A ILP model,
// Table II compares DOE against RTL across configurations.  A SweepSpec
// expands (workloads × ISA configs × cycle models) into independent
// Sessions; run_sweep() builds every program image once up front (immutable,
// shared by all points of the same workload/ISA pair), then executes the
// points on a pool of worker threads pulling from a shared work queue —
// every idle worker steals the next pending point, so long points (DOE on
// aes) never serialize behind short ones.
//
// Determinism: a sweep point is the exact Session a serial `ksim run` would
// construct for the same configuration; the simulator has no global mutable
// state (see session.h), so per-point statistics and cycle counts are
// bit-identical to serial runs regardless of thread count or completion
// order.  Results are reported in spec order, never completion order, and
// the ksim.sweep document carries no wall-clock fields — identical runs
// (including a journal-resumed one, DESIGN.md §11) render identical bytes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "api/report.h"
#include "api/run_config.h"
#include "api/sweep_journal.h"
#include "support/json.h"

namespace ksim::api {

/// The sweep grid: every workload × ISA × model × memory-geometry
/// combination becomes one point.  `base` supplies everything else (engine
/// switches, seed, bounds); its program-selection, model and memory fields
/// are ignored.
struct SweepSpec {
  std::vector<std::string> workloads; ///< built-in workload names
  std::vector<std::string> isas;      ///< "RISC", "VLIW2", ...
  std::vector<std::string> models;    ///< "none", "ilp", "aie", "doe" (no rtl)
  /// The kdse memory-geometry axis; defaults to one entry, the paper
  /// hierarchy, so grid-only sweeps behave exactly as before.
  std::vector<cycle::MemGeometry> geometries{cycle::MemGeometry{}};
  RunConfig base;
  int threads = 1;
  /// When set, every (workload, ISA) image is linted (analysis::run_lint)
  /// during the serial build phase; points whose image has lint findings
  /// fail with a "lint:" diagnostic instead of simulating.  Notes do not
  /// affect cleanliness, matching `ksim lint` exit semantics.
  bool require_lint_clean = false;

  /// Throws ksim::Error on empty dimensions, unknown names, rtl,
  /// threads < 1, duplicate geometry ids; ksim::ConfigError on impossible
  /// geometries (the exit-2 contract).
  void validate() const;

  /// Parses a JSON manifest (the single expansion/validation path — CLI flag
  /// grids are sugar that synthesizes one of these):
  ///   {"workloads": ["cjpeg", ...], "isas": ["RISC", ...],
  ///    "models": ["ilp", ...],
  ///    "memories": [{"line_size": [32, 64],
  ///                  "l1": {"sets": {"min": 16, "max": 64}, "ways": 4,
  ///                         "hit_latency": 3},
  ///                  "l2": {...}, "ports": 1, "miss_latency": 18}, ...],
  ///    "memory": {...}, "threads": 8, "seed": 1, "max_instructions": 0,
  ///    "require_lint_clean": true, "bp": "gshare", "bp_penalty": 3,
  ///    "decode_cache": true, "prediction": true, "superblocks": true,
  ///    "jit": true, "opstats": false}
  /// Only workloads/isas/models are required; unknown keys are rejected.
  /// "memories" enumerates the geometry axis (each leaf is a number, an
  /// explicit array, or a {"min","max"} power-of-two-doubling range; each
  /// entry cross-products its leaves, entries concatenate); "memory" sets
  /// one base geometry and is mutually exclusive with "memories".  The
  /// legacy flat keys ("mem_line_size", "mem_l1_sets", "mem_l1_ways",
  /// "mem_l1_latency", "mem_l2_sets", "mem_l2_ways", "mem_l2_latency",
  /// "mem_ports", "mem_miss_latency") still parse with a one-per-process
  /// deprecation warning each.  `origin` names the file in diagnostics.
  static SweepSpec from_manifest(const std::string& json_text,
                                 const std::string& origin);
};

/// Renders the canonical manifest for a spec: every key explicit, fixed key
/// order, geometries as explicit objects (ranges already expanded).  The
/// round trip from_manifest(render_sweep_manifest(spec)) reproduces the spec
/// — this is what `ksim sweep --dump-manifest` emits and what a sweep
/// journal directory pins as <dir>/manifest.json.
std::string render_sweep_manifest(const SweepSpec& spec);

/// Expands one "memories" manifest axis value (a JSON array of geometry
/// spec objects) into concrete geometries.  Exposed for tests.  Throws
/// ksim::ConfigError on malformed specs, duplicate ids or > 4096 points.
std::vector<cycle::MemGeometry> parse_geometry_axis(
    const support::JsonValue& memories, const std::string& origin);

/// One expanded grid point and (after run_sweep) its outcome.
struct SweepPoint {
  std::string workload;
  std::string isa;
  std::string model;
  cycle::MemGeometry memory;
  size_t memory_index = 0; ///< index into SweepSpec::geometries
  bool ok = false;
  std::string error;   ///< failure diagnostic when !ok
  Report report;       ///< valid when ok
  double wall_seconds = 0.0; ///< stderr progress only; never serialized
};

struct SweepResult {
  std::vector<SweepPoint> points; ///< spec order (workload-major)
  int threads = 1;                ///< workers actually used
  double wall_seconds = 0.0;      ///< whole sweep, image building included
  size_t failed = 0;
  size_t resumed = 0;             ///< points pre-filled from a journal

  double points_per_second() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(points.size()) / wall_seconds;
  }
};

/// Progress callback: invoked once per finished point (under a lock, from
/// worker threads) with the completed point and the done/total counts.
using SweepProgress = std::function<void(const SweepPoint&, size_t, size_t)>;

/// Expands the spec in deterministic workload-major order (workload, then
/// ISA, then model, then memory geometry) — the order points and reports
/// are emitted in.
std::vector<SweepPoint> expand_points(const SweepSpec& spec);

/// Runs the whole sweep.  A point that traps or errors is recorded as
/// !ok with its diagnostic; the sweep always completes.  Throws only on
/// spec/setup errors (validate, image building).  With a journal attached,
/// points already recorded in it are pre-filled and skipped, and every
/// newly finished point is appended — so a killed sweep resumes where it
/// stopped and renders byte-identical final JSON.
SweepResult run_sweep(const SweepSpec& spec, const SweepProgress& progress = {},
                      SweepJournal* journal = nullptr);

/// Indices of the Pareto-optimal points (minimize both coordinates) among
/// (cycles, area) pairs: strictly dominated points are removed, exact ties
/// all survive.  Returned sorted by area ascending, then cycles, then index.
std::vector<size_t> pareto_front(
    const std::vector<std::pair<uint64_t, uint64_t>>& points);

/// The "ksim.sweep" JSON document (schema_version kSchemaVersion).  Key
/// order: schema, schema_version, points_total, points_failed, the grid
/// dimensions (workloads, isas, models, memories — each memory entry carries
/// its id, geometry and area_proxy), "points" in spec order (each with its
/// geometry id and, when cycles are available, the cycles/area pair), then
/// "pareto": one front per (workload, isa, model) group that produced at
/// least one cycle-counted point.  Deliberately wall-clock-free: identical
/// sweeps (serial, threaded, or journal-resumed) render identical bytes.
std::string render_sweep_json(const SweepSpec& spec, const SweepResult& result);

/// Figure-4-style text matrix: one table per model, workloads down,
/// ISA configurations across, ops/cycle in the cells (cycles for "none").
std::string render_sweep_table(const SweepSpec& spec, const SweepResult& result);

} // namespace ksim::api
