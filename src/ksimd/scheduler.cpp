#include "ksimd/scheduler.h"

#include <exception>
#include <utility>

#include "api/report.h"
#include "ckpt/checkpoint.h"
#include "support/error.h"

namespace ksim::ksimd {

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

Scheduler::~Scheduler() { shutdown(false); }

bool Scheduler::draining() const {
  std::lock_guard<std::mutex> lk(m_);
  return draining_;
}

size_t Scheduler::live_count_locked(const std::string& tenant) const {
  size_t n = 0;
  for (const auto& j : jobs_)
    if (!terminal(j->state) && (tenant.empty() || j->tenant == tenant)) ++n;
  return n;
}

std::variant<Accepted, Rejected> Scheduler::submit(const SubmitRequest& request,
                                                   EventFn events) {
  api::RunConfig cfg = request.config;
  // The daemon owns all host-side behaviour: jobs never echo simulated
  // output into the daemon's stdout, trace, profile, or write snapshot
  // files (eviction checkpoints live in memory).
  cfg.echo_output = false;
  cfg.profile = false;
  cfg.trace_file.clear();
  cfg.jit_dump_asm.clear();
  cfg.ckpt_every = 0;
  cfg.ckpt_dir.clear();
  if (cfg.workload.empty() || !cfg.inputs.empty())
    return Rejected{"bad_config", "ksimd jobs must name a built-in workload", 0};
  try {
    cfg.validate();
  } catch (const std::exception& e) {
    return Rejected{"bad_config", e.what(), 0};
  }

  std::unique_lock<std::mutex> lk(m_);
  if (draining_ || stop_)
    return Rejected{"draining", "daemon is shutting down", 0};
  if (live_count_locked({}) >= options_.queue_capacity)
    return Rejected{"queue_full",
                    "job queue is full (" +
                        std::to_string(options_.queue_capacity) + " jobs)",
                    options_.retry_after_ms};
  if (live_count_locked(request.tenant) >= options_.quota.max_queued)
    return Rejected{"quota_queued",
                    "tenant \"" + request.tenant + "\" already has " +
                        std::to_string(options_.quota.max_queued) +
                        " live jobs",
                    0};
  if (options_.quota.max_instructions != 0 &&
      (cfg.max_instructions == 0 ||
       cfg.max_instructions > options_.quota.max_instructions))
    return Rejected{"quota_instructions",
                    "tenant jobs must set max_instr <= " +
                        std::to_string(options_.quota.max_instructions),
                    0};

  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->seq = job->id;
  job->tenant = request.tenant;
  job->priority = request.priority;
  job->label = cfg.workload + "@" + cfg.isa;
  job->cfg = std::move(cfg);
  job->events = std::move(events);
  Job& admitted = *job;
  jobs_.push_back(std::move(job));
  request_preemption_locked(admitted);
  cv_ready_.notify_one();
  return Accepted{admitted.id};
}

void Scheduler::request_preemption_locked(const Job& incoming) {
  if (running_ < workers_.size()) return; // an idle worker will pick it up
  size_t tenant_running = 0;
  for (const auto& j : jobs_)
    if (j->state == JobState::Running && j->tenant == incoming.tenant)
      ++tenant_running;
  if (tenant_running >= options_.quota.max_running) return; // could not run
  // Evict the lowest-priority running job strictly below the incoming one,
  // youngest first (it has the least progress to redo); jobs already asked
  // to yield are on their way out and count as the eviction in flight.
  Job* victim = nullptr;
  for (const auto& j : jobs_) {
    if (j->state != JobState::Running || j->priority >= incoming.priority)
      continue;
    if (j->yield.load()) return;
    if (!victim || j->priority < victim->priority ||
        (j->priority == victim->priority && j->seq > victim->seq))
      victim = j.get();
  }
  if (victim) victim->yield.store(true);
}

Scheduler::Job* Scheduler::pick_locked() {
  Job* best = nullptr;
  for (const auto& j : jobs_) {
    if (j->state != JobState::Queued && j->state != JobState::Preempted)
      continue;
    size_t tenant_running = 0;
    for (const auto& other : jobs_)
      if (other->state == JobState::Running && other->tenant == j->tenant)
        ++tenant_running;
    if (tenant_running >= options_.quota.max_running) continue;
    if (!best || j->priority > best->priority ||
        (j->priority == best->priority && j->seq < best->seq))
      best = j.get();
  }
  return best;
}

void Scheduler::worker_main() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    Job* job = nullptr;
    cv_ready_.wait(lk, [&] {
      if (stop_) return true;
      job = pick_locked();
      return job != nullptr;
    });
    if (job == nullptr) return; // stopping and nothing runnable
    run_job(lk, *job);
  }
}

void Scheduler::run_job(std::unique_lock<std::mutex>& lk, Job& job) {
  job.state = JobState::Running;
  ++running_;
  const uint64_t id = job.id;
  EventFn emit = job.events;
  if (!emit) emit = [](const std::string&) {};
  api::RunConfig cfg = job.cfg;
  std::vector<uint8_t> snapshot = std::move(job.ckpt);
  job.ckpt.clear();
  lk.unlock();

  bool preempted = false;
  std::vector<uint8_t> new_ckpt;
  JobState final_state = JobState::Done;
  int exit_code = 0;
  std::string error;
  std::string report;
  uint64_t done_instr = 0;

  try {
    std::unique_ptr<api::Session> session;
    ckpt::RunRecord record;
    if (!snapshot.empty()) {
      ckpt::Checkpoint ck = ckpt::parse_checkpoint(snapshot);
      const uint64_t resume_at = ck.instructions;
      api::ResumeOverrides overrides;
      overrides.max_instructions = cfg.max_instructions;
      overrides.echo_output = false;
      session = api::Session::resume(ck, overrides);
      record = std::move(ck.run);
      emit(encode(Progress{Progress::Kind::Resumed, id, resume_at}));
    } else {
      std::shared_ptr<const api::ProgramImage> image = images_.get(cfg);
      session = std::make_unique<api::Session>(cfg, *image);
      record = cfg.run_record(image->exe, image->label);
    }
    session->set_progress_hook(
        options_.slice_instructions, [&](api::Session& s) {
          const uint64_t n = s.simulator().stats().instructions;
          job.instructions.store(n, std::memory_order_relaxed);
          emit(encode(Progress{Progress::Kind::Running, id, n}));
          return job.yield.load() || job.cancel.load();
        });
    const sim::StopReason reason = session->run();
    done_instr = session->simulator().stats().instructions;
    job.instructions.store(done_instr, std::memory_order_relaxed);
    if (reason == sim::StopReason::Checkpoint) {
      if (job.cancel.load()) {
        final_state = JobState::Cancelled;
      } else {
        new_ckpt = ckpt::encode_checkpoint(record, session->participants());
        preempted = true;
      }
    } else if (reason == sim::StopReason::Trap ||
               reason == sim::StopReason::DecodeError) {
      final_state = JobState::Failed;
      exit_code = session->exit_code();
      error = session->error_report();
    } else {
      final_state = JobState::Done;
      exit_code = session->exit_code();
      report = api::render_report_json(session->report(reason));
    }
  } catch (const std::exception& e) {
    final_state = JobState::Failed;
    exit_code = 1;
    error = e.what();
  }

  std::string event;
  lk.lock();
  --running_;
  if (preempted && job.cancel.load()) {
    // Cancellation raced the eviction: drop the snapshot, finish now.
    preempted = false;
    final_state = JobState::Cancelled;
    new_ckpt.clear();
  }
  if (preempted) {
    job.ckpt = std::move(new_ckpt);
    job.state = JobState::Preempted;
    ++job.preemptions;
    job.yield.store(false);
    event = encode(Progress{Progress::Kind::Preempted, id, done_instr});
  } else {
    job.state = final_state;
    Done done;
    done.id = id;
    done.state = final_state;
    done.exit_code = exit_code;
    done.error = std::move(error);
    done.report = std::move(report);
    event = encode(done);
    cv_idle_.notify_all();
  }
  // Count the event as in flight until delivered: wait_idle()/shutdown()
  // must not return (and let the caller destroy its sink) while a worker
  // is still inside the EventFn.
  ++events_in_flight_;
  cv_ready_.notify_all(); // requeued work or a freed tenant running slot
  lk.unlock();
  emit(event);
  lk.lock();
  if (--events_in_flight_ == 0) cv_idle_.notify_all();
}

bool Scheduler::cancel(uint64_t id) {
  std::string event;
  EventFn emit;
  {
    std::lock_guard<std::mutex> lk(m_);
    Job* job = nullptr;
    for (const auto& j : jobs_)
      if (j->id == id) job = j.get();
    if (job == nullptr || terminal(job->state)) return false;
    if (job->state == JobState::Running) {
      job->cancel.store(true);
      return true; // terminates at the next slice boundary
    }
    job->state = JobState::Cancelled;
    job->ckpt.clear();
    Done done;
    done.id = id;
    done.state = JobState::Cancelled;
    event = encode(done);
    emit = job->events;
    if (emit) ++events_in_flight_;
    cv_idle_.notify_all();
  }
  if (emit) {
    emit(event);
    std::lock_guard<std::mutex> lk(m_);
    if (--events_in_flight_ == 0) cv_idle_.notify_all();
  }
  return true;
}

std::vector<JobInfo> Scheduler::jobs(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) {
    if (!tenant.empty() && j->tenant != tenant) continue;
    JobInfo info;
    info.id = j->id;
    info.tenant = j->tenant;
    info.priority = j->priority;
    info.state = j->state;
    info.label = j->label;
    info.instructions = j->instructions.load(std::memory_order_relaxed);
    info.preemptions = j->preemptions;
    out.push_back(std::move(info));
  }
  return out;
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lk(m_);
  cv_idle_.wait(
      lk, [&] { return live_count_locked({}) == 0 && events_in_flight_ == 0; });
}

void Scheduler::shutdown(bool drain) {
  std::unique_lock<std::mutex> lk(m_);
  if (stop_ && workers_.empty()) return; // already shut down
  draining_ = true;
  if (!drain) {
    std::vector<std::pair<EventFn, std::string>> cancelled;
    for (const auto& j : jobs_) {
      if (j->state == JobState::Queued || j->state == JobState::Preempted) {
        j->state = JobState::Cancelled;
        j->ckpt.clear();
        Done done;
        done.id = j->id;
        done.state = JobState::Cancelled;
        if (j->events) cancelled.emplace_back(j->events, encode(done));
      } else if (j->state == JobState::Running) {
        j->cancel.store(true);
      }
    }
    events_in_flight_ += cancelled.size();
    cv_idle_.notify_all();
    lk.unlock();
    for (const auto& [fn, line] : cancelled) fn(line);
    lk.lock();
    events_in_flight_ -= cancelled.size();
    cv_idle_.notify_all();
  }
  cv_idle_.wait(
      lk, [&] { return live_count_locked({}) == 0 && events_in_flight_ == 0; });
  stop_ = true;
  cv_ready_.notify_all();
  std::vector<std::thread> workers = std::move(workers_);
  workers_.clear();
  lk.unlock();
  for (std::thread& t : workers) t.join();
}

} // namespace ksim::ksimd
