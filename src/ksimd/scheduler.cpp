#include "ksimd/scheduler.h"

#include <exception>
#include <utility>

#include "api/report.h"
#include "ckpt/checkpoint.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::ksimd {

namespace {

/// The label a sweep progress line carries for one point.
std::string point_label(const api::SweepPoint& p) {
  return strf("%s@%s %s [%s]", p.workload.c_str(), p.isa.c_str(),
              p.model.c_str(), p.memory.id().c_str());
}

} // namespace

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

Scheduler::~Scheduler() { shutdown(false); }

bool Scheduler::draining() const {
  std::lock_guard<std::mutex> lk(m_);
  return draining_;
}

size_t Scheduler::live_count_locked(const std::string& tenant) const {
  size_t n = 0;
  for (const auto& j : jobs_)
    if (!terminal(j->state) && (tenant.empty() || j->tenant == tenant)) ++n;
  return n;
}

std::variant<Accepted, Rejected> Scheduler::submit(const SubmitRequest& request,
                                                   EventFn events) {
  api::RunConfig cfg = request.config;
  // The daemon owns all host-side behaviour: jobs never echo simulated
  // output into the daemon's stdout, trace, profile, or write snapshot
  // files (eviction checkpoints live in memory).
  cfg.echo_output = false;
  cfg.profile = false;
  cfg.trace_file.clear();
  cfg.jit_dump_asm.clear();
  cfg.ckpt_every = 0;
  cfg.ckpt_dir.clear();
  if (cfg.workload.empty() || !cfg.inputs.empty())
    return Rejected{"bad_config", "ksimd jobs must name a built-in workload", 0};
  try {
    cfg.validate();
  } catch (const std::exception& e) {
    return Rejected{"bad_config", e.what(), 0};
  }

  std::unique_lock<std::mutex> lk(m_);
  if (draining_ || stop_)
    return Rejected{"draining", "daemon is shutting down", 0};
  if (live_count_locked({}) >= options_.queue_capacity)
    return Rejected{"queue_full",
                    "job queue is full (" +
                        std::to_string(options_.queue_capacity) + " jobs)",
                    options_.retry_after_ms};
  if (live_count_locked(request.tenant) >= options_.quota.max_queued)
    return Rejected{"quota_queued",
                    "tenant \"" + request.tenant + "\" already has " +
                        std::to_string(options_.quota.max_queued) +
                        " live jobs",
                    0};
  if (options_.quota.max_instructions != 0 &&
      (cfg.max_instructions == 0 ||
       cfg.max_instructions > options_.quota.max_instructions))
    return Rejected{"quota_instructions",
                    "tenant jobs must set max_instr <= " +
                        std::to_string(options_.quota.max_instructions),
                    0};

  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->seq = job->id;
  job->tenant = request.tenant;
  job->priority = request.priority;
  job->label = cfg.workload + "@" + cfg.isa;
  job->cfg = std::move(cfg);
  job->events = std::move(events);
  Job& admitted = *job;
  jobs_.push_back(std::move(job));
  request_preemption_locked(admitted);
  cv_ready_.notify_one();
  return Accepted{admitted.id};
}

std::variant<Accepted, Rejected> Scheduler::submit_sweep(
    const SweepSubmitRequest& request, EventFn events) {
  api::SweepSpec spec;
  try {
    spec = api::SweepSpec::from_manifest(request.manifest, "<sweep manifest>");
    // The daemon owns all host-side behaviour, exactly as for plain jobs.
    spec.base.echo_output = false;
    spec.base.profile = false;
    spec.base.trace_file.clear();
    spec.base.jit_dump_asm.clear();
    spec.base.ckpt_every = 0;
    spec.base.ckpt_dir.clear();
    spec.validate();
  } catch (const std::exception& e) {
    return Rejected{"bad_config", e.what(), 0};
  }
  if (spec.require_lint_clean)
    return Rejected{"bad_config",
                    "require_lint_clean sweeps are not supported by the "
                    "service (the daemon never runs the serial lint phase)",
                    0};
  if (options_.quota.max_instructions != 0 &&
      (spec.base.max_instructions == 0 ||
       spec.base.max_instructions > options_.quota.max_instructions))
    return Rejected{"quota_instructions",
                    "sweep points must set max_instructions <= " +
                        std::to_string(options_.quota.max_instructions),
                    0};
  std::vector<api::SweepPoint> points = api::expand_points(spec);

  std::unique_lock<std::mutex> lk(m_);
  if (draining_ || stop_)
    return Rejected{"draining", "daemon is shutting down", 0};
  // A sweep holds at most `workers` point jobs in flight; admission only
  // needs room for that window, not for the whole grid.
  const size_t window = std::min(workers_.size(), points.size());
  if (live_count_locked({}) + window > options_.queue_capacity)
    return Rejected{"queue_full",
                    "job queue cannot fit a sweep window of " +
                        std::to_string(window) + " points",
                    options_.retry_after_ms};
  if (live_count_locked(request.tenant) + window > options_.quota.max_queued)
    return Rejected{"quota_queued",
                    "tenant \"" + request.tenant + "\" cannot fit a sweep "
                    "window of " + std::to_string(window) + " points",
                    0};

  auto op = std::make_unique<SweepOp>();
  op->id = next_id_++;
  op->tenant = request.tenant;
  op->priority = request.priority;
  op->spec = std::move(spec);
  op->points = std::move(points);
  op->events = std::move(events);
  SweepOp& admitted = *op;
  sweeps_.push_back(std::move(op));
  for (size_t k = 0; k < window; ++k) feed_sweep_point_locked(admitted);
  cv_ready_.notify_all();
  return Accepted{admitted.id};
}

void Scheduler::feed_sweep_point_locked(SweepOp& op) {
  if (op.cancelled || op.next_point >= op.points.size()) return;
  const size_t index = op.next_point++;
  const api::SweepPoint& p = op.points[index];
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->seq = job->id;
  job->tenant = op.tenant;
  job->priority = op.priority;
  job->label = p.workload + "@" + p.isa;
  api::RunConfig cfg = op.spec.base;
  cfg.workload = p.workload;
  cfg.isa = p.isa;
  cfg.model = p.model;
  cfg.memory = p.memory;
  cfg.echo_output = false; // simulated stdout stays in the session
  cfg.profile = false;
  job->cfg = std::move(cfg);
  job->sweep = &op;
  job->sweep_point = index;
  // Point jobs carry no per-job EventFn: the sweep streams its own
  // ksim.sweep.* lines instead of per-point ksim.job.* lifecycles.
  Job& admitted = *job;
  jobs_.push_back(std::move(job));
  request_preemption_locked(admitted);
  cv_ready_.notify_one();
}

void Scheduler::record_sweep_outcome_locked(SweepOp& op, size_t index,
                                            JobState state, std::string error,
                                            const api::Report& report,
                                            EventBatch& out) {
  api::SweepPoint& p = op.points[index];
  p.report = report;
  if (state == JobState::Done) {
    p.ok = true;
  } else if (state == JobState::Cancelled) {
    p.ok = false;
    p.error = "cancelled";
  } else {
    p.ok = false;
    p.error = std::move(error);
  }
  ++op.done;
  if (!p.ok) ++op.failed;
  feed_sweep_point_locked(op);
  if (op.events) {
    SweepProgress progress;
    progress.id = op.id;
    progress.done = op.done;
    progress.total = op.points.size();
    progress.label = point_label(p);
    progress.ok = p.ok;
    out.emplace_back(op.events, encode(progress));
  }
  if (op.done == op.points.size()) {
    api::SweepResult result;
    result.points = op.points;
    result.failed = op.failed;
    SweepDone done;
    done.id = op.id;
    done.state = op.cancelled ? JobState::Cancelled : JobState::Done;
    done.points_failed = op.failed;
    done.report = api::render_sweep_json(op.spec, result);
    if (op.events) out.emplace_back(op.events, encode(done));
  }
}

void Scheduler::cancel_sweep_locked(SweepOp& op, EventBatch& out) {
  op.cancelled = true;
  // Unfed points first: they have no job to wait for.
  while (op.next_point < op.points.size())
    record_sweep_outcome_locked(op, op.next_point++, JobState::Cancelled, {},
                                {}, out);
  for (const auto& j : jobs_) {
    if (j->sweep != &op || terminal(j->state)) continue;
    if (j->state == JobState::Running) {
      j->cancel.store(true); // records its outcome at the next slice boundary
    } else {
      j->state = JobState::Cancelled;
      j->ckpt.clear();
      record_sweep_outcome_locked(op, j->sweep_point, JobState::Cancelled, {},
                                  {}, out);
    }
  }
  cv_idle_.notify_all();
}

void Scheduler::request_preemption_locked(const Job& incoming) {
  if (running_ < workers_.size()) return; // an idle worker will pick it up
  size_t tenant_running = 0;
  for (const auto& j : jobs_)
    if (j->state == JobState::Running && j->tenant == incoming.tenant)
      ++tenant_running;
  if (tenant_running >= options_.quota.max_running) return; // could not run
  // Evict the lowest-priority running job strictly below the incoming one,
  // youngest first (it has the least progress to redo); jobs already asked
  // to yield are on their way out and count as the eviction in flight.
  Job* victim = nullptr;
  for (const auto& j : jobs_) {
    if (j->state != JobState::Running || j->priority >= incoming.priority)
      continue;
    if (j->yield.load()) return;
    if (!victim || j->priority < victim->priority ||
        (j->priority == victim->priority && j->seq > victim->seq))
      victim = j.get();
  }
  if (victim) victim->yield.store(true);
}

Scheduler::Job* Scheduler::pick_locked() {
  Job* best = nullptr;
  for (const auto& j : jobs_) {
    if (j->state != JobState::Queued && j->state != JobState::Preempted)
      continue;
    size_t tenant_running = 0;
    for (const auto& other : jobs_)
      if (other->state == JobState::Running && other->tenant == j->tenant)
        ++tenant_running;
    if (tenant_running >= options_.quota.max_running) continue;
    if (!best || j->priority > best->priority ||
        (j->priority == best->priority && j->seq < best->seq))
      best = j.get();
  }
  return best;
}

void Scheduler::worker_main() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    Job* job = nullptr;
    cv_ready_.wait(lk, [&] {
      if (stop_) return true;
      job = pick_locked();
      return job != nullptr;
    });
    if (job == nullptr) return; // stopping and nothing runnable
    run_job(lk, *job);
  }
}

void Scheduler::run_job(std::unique_lock<std::mutex>& lk, Job& job) {
  job.state = JobState::Running;
  ++running_;
  const uint64_t id = job.id;
  EventFn emit = job.events;
  if (!emit) emit = [](const std::string&) {};
  api::RunConfig cfg = job.cfg;
  std::vector<uint8_t> snapshot = std::move(job.ckpt);
  job.ckpt.clear();
  lk.unlock();

  bool preempted = false;
  std::vector<uint8_t> new_ckpt;
  JobState final_state = JobState::Done;
  int exit_code = 0;
  std::string error;
  std::string report;
  api::Report point_report; // sweep points: feeds the final ksim.sweep doc
  uint64_t done_instr = 0;

  try {
    std::unique_ptr<api::Session> session;
    ckpt::RunRecord record;
    if (!snapshot.empty()) {
      ckpt::Checkpoint ck = ckpt::parse_checkpoint(snapshot);
      const uint64_t resume_at = ck.instructions;
      api::ResumeOverrides overrides;
      overrides.max_instructions = cfg.max_instructions;
      overrides.echo_output = false;
      session = api::Session::resume(ck, overrides);
      record = std::move(ck.run);
      emit(encode(Progress{Progress::Kind::Resumed, id, resume_at}));
    } else {
      std::shared_ptr<const api::ProgramImage> image = images_.get(cfg);
      session = std::make_unique<api::Session>(cfg, *image);
      record = cfg.run_record(image->exe, image->label);
    }
    session->set_progress_hook(
        options_.slice_instructions, [&](api::Session& s) {
          const uint64_t n = s.simulator().stats().instructions;
          job.instructions.store(n, std::memory_order_relaxed);
          emit(encode(Progress{Progress::Kind::Running, id, n}));
          return job.yield.load() || job.cancel.load();
        });
    const sim::StopReason reason = session->run();
    done_instr = session->simulator().stats().instructions;
    job.instructions.store(done_instr, std::memory_order_relaxed);
    if (reason == sim::StopReason::Checkpoint) {
      if (job.cancel.load()) {
        final_state = JobState::Cancelled;
      } else {
        new_ckpt = ckpt::encode_checkpoint(record, session->participants());
        preempted = true;
      }
    } else if (reason == sim::StopReason::Trap ||
               reason == sim::StopReason::DecodeError) {
      final_state = JobState::Failed;
      exit_code = session->exit_code();
      error = session->error_report();
      if (job.sweep != nullptr) {
        // Mirror run_sweep's point semantics exactly: the report is taken
        // even on a trap, and the diagnostic is prefixed with the reason.
        point_report = session->report(reason);
        error = std::string(sim::to_string(reason)) + ":\n" + error;
      }
    } else {
      final_state = JobState::Done;
      exit_code = session->exit_code();
      if (job.sweep != nullptr)
        point_report = session->report(reason);
      else
        report = api::render_report_json(session->report(reason));
    }
  } catch (const std::exception& e) {
    final_state = JobState::Failed;
    exit_code = 1;
    error = e.what();
  }

  EventBatch emits;
  lk.lock();
  --running_;
  if (preempted && job.cancel.load()) {
    // Cancellation raced the eviction: drop the snapshot, finish now.
    preempted = false;
    final_state = JobState::Cancelled;
    new_ckpt.clear();
  }
  if (preempted) {
    job.ckpt = std::move(new_ckpt);
    job.state = JobState::Preempted;
    ++job.preemptions;
    job.yield.store(false);
    emits.emplace_back(emit,
                       encode(Progress{Progress::Kind::Preempted, id,
                                       done_instr}));
  } else {
    job.state = final_state;
    if (job.sweep != nullptr) {
      record_sweep_outcome_locked(*job.sweep, job.sweep_point, final_state,
                                  std::move(error), point_report, emits);
    } else {
      Done done;
      done.id = id;
      done.state = final_state;
      done.exit_code = exit_code;
      done.error = std::move(error);
      done.report = std::move(report);
      emits.emplace_back(emit, encode(done));
    }
    cv_idle_.notify_all();
  }
  // Count the events as in flight until delivered: wait_idle()/shutdown()
  // must not return (and let the caller destroy its sink) while a worker
  // is still inside an EventFn.
  events_in_flight_ += emits.size();
  cv_ready_.notify_all(); // requeued work or a freed tenant running slot
  lk.unlock();
  for (const auto& [fn, line] : emits) fn(line);
  lk.lock();
  events_in_flight_ -= emits.size();
  if (events_in_flight_ == 0) cv_idle_.notify_all();
}

bool Scheduler::cancel(uint64_t id) {
  EventBatch emits;
  {
    std::lock_guard<std::mutex> lk(m_);
    Job* job = nullptr;
    for (const auto& j : jobs_)
      if (j->id == id) job = j.get();
    if (job != nullptr) {
      // Point jobs are internal to their sweep; cancel the sweep id instead.
      if (job->sweep != nullptr || terminal(job->state)) return false;
      if (job->state == JobState::Running) {
        job->cancel.store(true);
        return true; // terminates at the next slice boundary
      }
      job->state = JobState::Cancelled;
      job->ckpt.clear();
      Done done;
      done.id = id;
      done.state = JobState::Cancelled;
      if (job->events) emits.emplace_back(job->events, encode(done));
      cv_idle_.notify_all();
    } else {
      SweepOp* op = nullptr;
      for (const auto& s : sweeps_)
        if (s->id == id) op = s.get();
      if (op == nullptr || op->done == op->points.size()) return false;
      cancel_sweep_locked(*op, emits);
    }
    events_in_flight_ += emits.size();
  }
  for (const auto& [fn, line] : emits) fn(line);
  {
    std::lock_guard<std::mutex> lk(m_);
    events_in_flight_ -= emits.size();
    if (events_in_flight_ == 0) cv_idle_.notify_all();
  }
  return true;
}

std::vector<JobInfo> Scheduler::jobs(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) {
    if (!tenant.empty() && j->tenant != tenant) continue;
    JobInfo info;
    info.id = j->id;
    info.tenant = j->tenant;
    info.priority = j->priority;
    info.state = j->state;
    info.label = j->label;
    info.instructions = j->instructions.load(std::memory_order_relaxed);
    info.preemptions = j->preemptions;
    out.push_back(std::move(info));
  }
  return out;
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lk(m_);
  cv_idle_.wait(
      lk, [&] { return live_count_locked({}) == 0 && events_in_flight_ == 0; });
}

void Scheduler::shutdown(bool drain) {
  std::unique_lock<std::mutex> lk(m_);
  if (stop_ && workers_.empty()) return; // already shut down
  draining_ = true;
  if (!drain) {
    EventBatch cancelled;
    // Sweeps first: cancel_sweep_locked marks their queued/preempted point
    // jobs terminal, so the plain-job loop below only sees its own.
    for (const auto& op : sweeps_)
      if (op->done < op->points.size()) cancel_sweep_locked(*op, cancelled);
    for (const auto& j : jobs_) {
      if (j->state == JobState::Queued || j->state == JobState::Preempted) {
        j->state = JobState::Cancelled;
        j->ckpt.clear();
        Done done;
        done.id = j->id;
        done.state = JobState::Cancelled;
        if (j->events) cancelled.emplace_back(j->events, encode(done));
      } else if (j->state == JobState::Running) {
        j->cancel.store(true);
      }
    }
    events_in_flight_ += cancelled.size();
    cv_idle_.notify_all();
    lk.unlock();
    for (const auto& [fn, line] : cancelled) fn(line);
    lk.lock();
    events_in_flight_ -= cancelled.size();
    cv_idle_.notify_all();
  }
  cv_idle_.wait(
      lk, [&] { return live_count_locked({}) == 0 && events_in_flight_ == 0; });
  stop_ = true;
  cv_ready_.notify_all();
  std::vector<std::thread> workers = std::move(workers_);
  workers_.clear();
  lk.unlock();
  for (std::thread& t : workers) t.join();
}

} // namespace ksim::ksimd
