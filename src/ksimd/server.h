// ksimd — the TCP front end of the simulation service (DESIGN.md §10).
//
// The server listens on a local TCP port and speaks the line-delimited JSON
// protocol of protocol.h.  Each accepted connection gets its own reader
// thread and a shared, mutex-guarded event sink; job lifecycle events stream
// to the submitting connection from scheduler worker threads through that
// sink, which simply goes inert once the client disconnects (jobs outlive
// their submitters).
//
// Shutdown: request_stop() — from the shutdown protocol message or a signal
// handler (it only stores an atomic and write()s the self-pipe, both
// async-signal-safe) — wakes the accept loop.  run() then stops accepting,
// drains or aborts the scheduler (drain: queued and running jobs finish and
// clients receive their events; abort: queued jobs cancel, running jobs
// yield into cancellation at the next slice boundary), and finally unblocks
// and joins every connection thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ksimd/scheduler.h"

namespace ksim::ksimd {

struct ServerOptions {
  std::string host = "127.0.0.1"; ///< bind address (local service)
  uint16_t port = 0;              ///< 0 = ephemeral, see port()
};

class Server {
public:
  /// Binds and listens immediately (throws ksim::Error on failure), but
  /// accepts nothing until run().
  Server(const SchedulerOptions& scheduler_options,
         const ServerOptions& server_options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0).
  uint16_t port() const { return port_; }

  /// Accept/serve loop; blocks until request_stop(), then performs the full
  /// drain-or-abort shutdown sequence before returning.
  void run();

  /// Wakes run() out of its accept loop.  Async-signal-safe; the first call
  /// wins the drain/abort decision.
  void request_stop(bool drain);

  Scheduler& scheduler() { return scheduler_; }

private:
  /// One connected client: the socket plus the write-side lock that
  /// serializes replies and streamed events.  Scheduler EventFns hold a
  /// shared_ptr, so the sink outlives both the connection and the server.
  struct Sink {
    std::mutex m;
    int fd = -1; ///< -1 once detached
    void send_line(const std::string& line);
    void detach();
  };

  void handle_connection(int fd, const std::shared_ptr<Sink>& sink);
  void handle_line(const std::string& line, Sink& sink);

  Scheduler scheduler_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1}; ///< self-pipe waking the accept loop
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stop_drain_{true};

  std::mutex conns_m_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::shared_ptr<Sink>> conn_sinks_;
};

/// Blocking protocol client used by `ksim submit/jobs/cancel/shutdown`, the
/// tests and the load generator: connects, sends one line at a time, reads
/// framed replies.
class Client {
public:
  Client(const std::string& host, uint16_t port); ///< throws on failure
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_line(const std::string& line);

  /// Next complete line, or std::nullopt on EOF.  Throws on socket errors
  /// and oversized frames.
  std::optional<std::string> read_line();

  /// read_line + parse_message convenience.
  std::optional<Message> read_message();

private:
  int fd_ = -1;
  LineSplitter splitter_;
};

} // namespace ksim::ksimd
