#include "ksimd/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/error.h"

namespace ksim::ksimd {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

sockaddr_in make_addr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw Error("ksimd: bad IPv4 address \"" + host + "\"");
  return addr;
}

} // namespace

// -- Server::Sink ------------------------------------------------------------

void Server::Sink::send_line(const std::string& line) {
  std::lock_guard<std::mutex> lk(m);
  if (fd < 0) return; // client gone; the job keeps running regardless
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      fd = -1; // broken pipe: stop writing, the reader thread owns close()
      return;
    }
    off += static_cast<size_t>(n);
  }
}

void Server::Sink::detach() {
  std::lock_guard<std::mutex> lk(m);
  fd = -1;
}

// -- Server ------------------------------------------------------------------

Server::Server(const SchedulerOptions& scheduler_options,
               const ServerOptions& server_options)
    : scheduler_(scheduler_options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("ksimd: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(server_options.host, server_options.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw Error("ksimd: cannot bind " + server_options.host + ":" +
                std::to_string(server_options.port) + ": " + why);
  }
  if (::listen(listen_fd_, 64) != 0) {
    close_fd(listen_fd_);
    throw Error("ksimd: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    close_fd(listen_fd_);
    throw Error("ksimd: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  if (::pipe(stop_pipe_) != 0) {
    close_fd(listen_fd_);
    throw Error("ksimd: pipe() failed");
  }
}

Server::~Server() {
  if (!stop_requested_.load()) request_stop(false);
  scheduler_.shutdown(false);
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (const auto& sink : conn_sinks_) {
      std::lock_guard<std::mutex> slk(sink->m);
      if (sink->fd >= 0) ::shutdown(sink->fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : conn_threads_)
    if (t.joinable()) t.join();
  close_fd(listen_fd_);
  close_fd(stop_pipe_[0]);
  close_fd(stop_pipe_[1]);
}

void Server::request_stop(bool drain) {
  bool expected = false;
  if (stop_requested_.compare_exchange_strong(expected, true))
    stop_drain_.store(drain);
  const char byte = 's';
  // Async-signal-safe wake-up; a full pipe already guarantees a pending one.
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void Server::run() {
  while (!stop_requested_.load()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error("ksimd: poll() failed");
    }
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto sink = std::make_shared<Sink>();
    sink->fd = fd;
    std::lock_guard<std::mutex> lk(conns_m_);
    conn_sinks_.push_back(sink);
    conn_threads_.emplace_back(
        [this, fd, sink] { handle_connection(fd, sink); });
  }

  // Shutdown sequence: no new connections, then let the scheduler drain (or
  // abort) while clients are still attached and receiving events, then
  // unblock and join every connection reader.
  scheduler_.shutdown(stop_drain_.load());
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (const auto& sink : conn_sinks_) {
      std::lock_guard<std::mutex> slk(sink->m);
      if (sink->fd >= 0) ::shutdown(sink->fd, SHUT_RDWR);
    }
    threads = std::move(conn_threads_);
    conn_threads_.clear();
  }
  for (std::thread& t : threads) t.join();
}

void Server::handle_connection(int fd, const std::shared_ptr<Sink>& sink) {
  LineSplitter splitter;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    splitter.feed(std::string_view(buf, static_cast<size_t>(n)));
    if (splitter.overflowed()) {
      sink->send_line(encode(Rejected{
          "oversized",
          "message exceeds " + std::to_string(kMaxLineBytes) + " bytes", 0}));
      break;
    }
    while (std::optional<std::string> line = splitter.next()) {
      if (line->empty()) continue;
      handle_line(*line, *sink);
    }
  }
  sink->detach(); // running jobs keep going; their events go nowhere
  ::close(fd);
}

void Server::handle_line(const std::string& line, Sink& sink) {
  Message msg;
  try {
    msg = parse_message(line);
  } catch (const std::exception& e) {
    sink.send_line(encode(Rejected{"bad_message", e.what(), 0}));
    return;
  }

  // The event sink is shared with scheduler workers by value; it outlives
  // the connection and goes inert when the client hangs up.
  const auto event_fn = [this, &sink]() -> EventFn {
    std::shared_ptr<Sink> shared;
    {
      std::lock_guard<std::mutex> lk(conns_m_);
      for (const auto& s : conn_sinks_)
        if (s.get() == &sink) shared = s;
    }
    return [shared](const std::string& event) {
      if (shared) shared->send_line(event);
    };
  };

  if (const auto* submit = std::get_if<SubmitRequest>(&msg)) {
    auto outcome = scheduler_.submit(*submit, event_fn());
    if (const auto* accepted = std::get_if<Accepted>(&outcome))
      sink.send_line(encode(*accepted));
    else
      sink.send_line(encode(std::get<Rejected>(outcome)));
    return;
  }
  if (const auto* sweep = std::get_if<SweepSubmitRequest>(&msg)) {
    auto outcome = scheduler_.submit_sweep(*sweep, event_fn());
    if (const auto* accepted = std::get_if<Accepted>(&outcome))
      sink.send_line(encode(*accepted));
    else
      sink.send_line(encode(std::get<Rejected>(outcome)));
    return;
  }
  if (const auto* list = std::get_if<ListRequest>(&msg)) {
    StatusReply reply;
    reply.jobs = scheduler_.jobs(list->tenant);
    sink.send_line(encode(reply));
    return;
  }
  if (const auto* cancel = std::get_if<CancelRequest>(&msg)) {
    if (scheduler_.cancel(cancel->id))
      sink.send_line(encode(Ok{"cancelling job " + std::to_string(cancel->id)}));
    else
      sink.send_line(encode(Rejected{
          "unknown_job",
          "no live job " + std::to_string(cancel->id), 0}));
    return;
  }
  if (const auto* shut = std::get_if<ShutdownRequest>(&msg)) {
    sink.send_line(encode(Ok{shut->drain ? "draining" : "aborting"}));
    request_stop(shut->drain);
    return;
  }
  sink.send_line(encode(
      Rejected{"bad_message", "not a request message", 0}));
}

// -- Client ------------------------------------------------------------------

Client::Client(const std::string& host, uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("ksimd: socket() failed");
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(fd_);
    throw Error("ksimd: cannot connect to " + host + ":" +
                std::to_string(port) + ": " + why);
  }
}

Client::~Client() { close_fd(fd_); }

void Client::send_line(const std::string& line) {
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) throw Error("ksimd: connection lost while sending");
    off += static_cast<size_t>(n);
  }
}

std::optional<std::string> Client::read_line() {
  for (;;) {
    if (std::optional<std::string> line = splitter_.next()) return line;
    if (splitter_.overflowed())
      throw Error("ksimd: oversized message from daemon");
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return std::nullopt;
    if (n < 0) throw Error("ksimd: connection lost while reading");
    splitter_.feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

std::optional<Message> Client::read_message() {
  std::optional<std::string> line = read_line();
  if (!line) return std::nullopt;
  return parse_message(*line);
}

} // namespace ksim::ksimd
