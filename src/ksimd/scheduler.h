// ksimd — the multi-tenant job scheduler (DESIGN.md §10).
//
// The scheduler owns a bounded queue of simulation jobs and a fixed pool of
// worker threads.  Jobs are RunConfig payloads (built-in workloads only);
// each runs inside its own api::Session against a shared, refcounted
// ProgramImage (api::ImageCache), so concurrent jobs for the same workload
// share one immutable build.
//
// Preemption is checkpoint-based: every job's Session carries a cooperative
// progress hook at the slice cadence; when a higher-priority job arrives and
// no worker is idle, the lowest-priority running job below it is asked to
// yield.  At the next slice boundary the worker stops the run
// (StopReason::Checkpoint — a bit-identical snapshot point), encodes the
// session into in-memory kckpt bytes, emits `ksim.job.preempted`, and
// requeues the job.  When the job is picked again the worker rebuilds the
// session from those bytes via Session::resume, emits `ksim.job.resumed`,
// and continues — the final report is byte-identical to an uninterrupted
// run (the property the ci.sh soak stage pins; jit_* counters are process-
// volatile, so byte-level comparisons use --no-jit configurations).
//
// Job lifecycle:    Queued ──> Running ──> Done | Failed | Cancelled
//                     ^           │
//                     │ (pick)    │ (yield at slice boundary)
//                   Preempted <───┘
// Cancellation from Queued/Preempted is immediate; from Running it rides the
// same yield mechanism and terminates at the next slice boundary.
//
// Admission control (submit, all-or-nothing, typed Rejected answers):
//   queue_full          total live jobs at queue_capacity (retryable —
//                       retry_after_ms is the advisory backoff)
//   quota_queued        tenant at max_queued live jobs
//   quota_instructions  tenant quota demands a finite per-job budget
//   bad_config          RunConfig validation failed / not a built-in workload
//   draining            shutdown in progress
//
// Sweep fan-out (kdse, DESIGN.md §11): submit_sweep() turns one manifest
// into a SweepOp whose grid points run as ordinary point jobs — same
// quotas, same priority-based preemption.  Points are fed lazily (at most
// `workers` in flight per sweep) and their outcomes land at spec-order
// indices, so the terminal ksim.sweep.done report is byte-comparable to a
// local `ksim sweep --json` of the same manifest.  A sweep keeps at least
// one live point job until every point is recorded, which is what lets
// wait_idle()/shutdown() treat sweeps as ordinary pending work.
//
// Locking: one mutex guards all job and queue state; simulation runs with
// the lock released.  Event callbacks are copied out and invoked unlocked,
// so an EventFn may itself take locks (the server's per-connection write
// mutex) without ordering against the scheduler.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "api/image_cache.h"
#include "api/sweep.h"
#include "ksimd/protocol.h"

namespace ksim::ksimd {

/// Per-tenant admission limits (one policy applied to every tenant).
struct TenantQuota {
  size_t max_queued = 16;         ///< live (non-terminal) jobs per tenant
  size_t max_running = 4;         ///< concurrently running jobs per tenant
  uint64_t max_instructions = 0;  ///< per-job budget ceiling (0 = unlimited)
};

struct SchedulerOptions {
  size_t workers = 4;
  size_t queue_capacity = 64;          ///< live jobs across all tenants
  uint64_t slice_instructions = 1'000'000; ///< progress/yield cadence
  int retry_after_ms = 1000;           ///< advisory backoff on queue_full
  TenantQuota quota;
};

/// Receives one encoded protocol line per job event (`ksim.job.progress`,
/// `.preempted`, `.resumed`, `.done`).  Invoked from worker threads with no
/// scheduler lock held; must be callable after the submitting connection is
/// gone (the server swaps in a null sink on disconnect).
using EventFn = std::function<void(const std::string& line)>;

class Scheduler {
public:
  explicit Scheduler(SchedulerOptions options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits or rejects a job.  On Accepted the job is queued and `events`
  /// will receive its lifecycle lines; on Rejected nothing was enqueued.
  std::variant<Accepted, Rejected> submit(const SubmitRequest& request,
                                          EventFn events);

  /// Admits or rejects a whole sweep (kdse sweep-as-a-service).  The
  /// manifest is parsed and expanded like a local `ksim sweep --manifest`;
  /// each grid point becomes an ordinary point job under the tenant's
  /// quotas, priority and checkpoint preemption.  At most `workers` point
  /// jobs are in flight at a time (the next point is fed as one finishes),
  /// so one sweep cannot monopolize the admission queue.  `events` receives
  /// one ksim.sweep.progress line per finished point and a final
  /// ksim.sweep.done whose report is the ksim.sweep document rendered from
  /// the same spec-ordered points as a local sweep.  require_lint_clean
  /// manifests are rejected (bad_config): the daemon never runs the serial
  /// lint phase.
  std::variant<Accepted, Rejected> submit_sweep(
      const SweepSubmitRequest& request, EventFn events);

  /// Requests cancellation.  Returns false for unknown or already-terminal
  /// jobs; queued/preempted jobs cancel immediately, running jobs at the
  /// next slice boundary.
  bool cancel(uint64_t id);

  /// Snapshot of every job (newest last), optionally filtered by tenant.
  std::vector<JobInfo> jobs(const std::string& tenant = {}) const;

  /// Blocks until no job is queued, running, or preempted AND every
  /// terminal event has been delivered — afterwards no worker is inside an
  /// EventFn, so callers may safely destroy their event sinks.
  void wait_idle();

  /// Stops the pool.  drain=true finishes all live jobs first; drain=false
  /// cancels queued/preempted jobs and yields running ones into
  /// cancellation.  Idempotent; the destructor calls shutdown(false).
  void shutdown(bool drain);

  bool draining() const;
  api::ImageCache::Stats image_cache_stats() const { return images_.stats(); }
  const SchedulerOptions& options() const { return options_; }

private:
  /// A live sweep fan-out.  Points complete in arbitrary order but are
  /// stored at their spec-order index, so the final report is rendered from
  /// exactly the point list a local run_sweep would produce.
  struct SweepOp {
    uint64_t id = 0;
    std::string tenant;
    int priority = 0;
    api::SweepSpec spec;
    std::vector<api::SweepPoint> points;
    size_t next_point = 0;          ///< feed cursor into `points`
    size_t done = 0;                ///< points with a recorded outcome
    size_t failed = 0;
    bool cancelled = false;
    EventFn events;
  };

  struct Job {
    uint64_t id = 0;
    uint64_t seq = 0;               ///< admission order (FIFO tiebreak)
    std::string tenant;
    int priority = 0;
    std::string label;              ///< "<workload>@<ISA>"
    api::RunConfig cfg;
    JobState state = JobState::Queued;
    std::atomic<uint64_t> instructions{0}; ///< progress, read by jobs()
    uint64_t preemptions = 0;
    std::atomic<bool> yield{false};  ///< preempt at next slice boundary
    std::atomic<bool> cancel{false}; ///< cancel at next slice boundary
    std::vector<uint8_t> ckpt;       ///< eviction snapshot (Preempted only)
    SweepOp* sweep = nullptr;        ///< owning sweep for point jobs
    size_t sweep_point = 0;          ///< spec-order index into sweep->points
    EventFn events;
  };

  /// Deferred event lines: collected under the lock, delivered outside it.
  using EventBatch = std::vector<std::pair<EventFn, std::string>>;

  void worker_main();
  Job* pick_locked();
  void request_preemption_locked(const Job& incoming);
  void run_job(std::unique_lock<std::mutex>& lk, Job& job);
  void feed_sweep_point_locked(SweepOp& op);
  void record_sweep_outcome_locked(SweepOp& op, size_t index, JobState state,
                                   std::string error, const api::Report& report,
                                   EventBatch& out);
  void cancel_sweep_locked(SweepOp& op, EventBatch& out);
  size_t live_count_locked(const std::string& tenant) const;
  static bool terminal(JobState s) {
    return s == JobState::Done || s == JobState::Failed ||
           s == JobState::Cancelled;
  }

  SchedulerOptions options_;
  api::ImageCache images_;

  mutable std::mutex m_;
  std::condition_variable cv_ready_; ///< queue/topology changed
  std::condition_variable cv_idle_;  ///< a job reached a terminal state
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<std::unique_ptr<SweepOp>> sweeps_;
  std::vector<std::thread> workers_;
  uint64_t next_id_ = 1;
  size_t running_ = 0;
  size_t events_in_flight_ = 0; ///< terminal events not yet delivered
  bool draining_ = false; ///< no new admissions
  bool stop_ = false;     ///< workers exit once nothing is runnable
};

} // namespace ksim::ksimd
