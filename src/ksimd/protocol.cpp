#include "ksimd/protocol.h"

#include <utility>

#include "api/report.h"
#include "support/error.h"

namespace ksim::ksimd {

using support::JsonStyle;
using support::JsonValue;
using support::JsonWriter;
using support::kJsonSchemaVersion;

// -- LineSplitter ------------------------------------------------------------

void LineSplitter::feed(std::string_view bytes) {
  if (overflow_) return;
  size_t start = 0;
  while (start < bytes.size()) {
    const size_t nl = bytes.find('\n', start);
    if (nl == std::string_view::npos) {
      partial_.append(bytes.substr(start));
      break;
    }
    partial_.append(bytes.substr(start, nl - start));
    if (partial_.size() > max_) {
      overflow_ = true;
      return;
    }
    lines_.push_back(std::move(partial_));
    partial_.clear();
    start = nl + 1;
  }
  if (partial_.size() > max_) overflow_ = true;
}

std::optional<std::string> LineSplitter::next() {
  if (lines_.empty()) return std::nullopt;
  std::string line = std::move(lines_.front());
  lines_.pop_front();
  return line;
}

// -- JobState ----------------------------------------------------------------

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Preempted: return "preempted";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

JobState job_state_from_string(std::string_view s) {
  if (s == "queued") return JobState::Queued;
  if (s == "running") return JobState::Running;
  if (s == "preempted") return JobState::Preempted;
  if (s == "done") return JobState::Done;
  if (s == "failed") return JobState::Failed;
  if (s == "cancelled") return JobState::Cancelled;
  throw Error("ksimd: unknown job state \"" + std::string(s) + "\"");
}

// -- encode ------------------------------------------------------------------

namespace {

JsonWriter message_writer(std::string_view schema) {
  JsonWriter w(JsonStyle::Compact);
  w.begin_object();
  w.field("schema", schema);
  w.field("schema_version", kJsonSchemaVersion);
  return w;
}

const char* progress_schema(Progress::Kind kind) {
  switch (kind) {
    case Progress::Kind::Running: return "ksim.job.progress";
    case Progress::Kind::Preempted: return "ksim.job.preempted";
    case Progress::Kind::Resumed: return "ksim.job.resumed";
  }
  return "?";
}

} // namespace

std::string encode(const SubmitRequest& m) {
  JsonWriter w = message_writer("ksim.job.submit");
  w.field("tenant", m.tenant);
  w.field("priority", m.priority);
  w.begin_object("config");
  const api::RunConfig& c = m.config;
  w.field("workload", c.workload);
  w.field("isa", c.isa);
  w.field("model", c.model);
  w.field("bp", c.bp_kind);
  w.field("bp_penalty", c.bp_penalty);
  w.field("decode_cache", c.use_decode_cache);
  w.field("prediction", c.use_prediction);
  w.field("superblocks", c.use_superblocks);
  w.field("jit", c.use_jit);
  w.field("opstats", c.collect_op_stats);
  w.field("max_instr", c.max_instructions);
  w.field("seed", static_cast<uint64_t>(c.seed));
  api::write_mem_geometry(w, "memory", c.memory);
  w.end();
  w.end();
  return w.str();
}

std::string encode(const SweepSubmitRequest& m) {
  JsonWriter w = message_writer("ksim.sweep.submit");
  w.field("tenant", m.tenant);
  w.field("priority", m.priority);
  w.field("manifest", m.manifest);
  w.end();
  return w.str();
}

std::string encode(const ListRequest& m) {
  JsonWriter w = message_writer("ksim.job.list");
  w.field("tenant", m.tenant);
  w.end();
  return w.str();
}

std::string encode(const CancelRequest& m) {
  JsonWriter w = message_writer("ksim.job.cancel");
  w.field("id", m.id);
  w.end();
  return w.str();
}

std::string encode(const ShutdownRequest& m) {
  JsonWriter w = message_writer("ksim.daemon.shutdown");
  w.field("drain", m.drain);
  w.end();
  return w.str();
}

std::string encode(const Accepted& m) {
  JsonWriter w = message_writer("ksim.job.accepted");
  w.field("id", m.id);
  w.end();
  return w.str();
}

std::string encode(const Rejected& m) {
  JsonWriter w = message_writer("ksim.job.rejected");
  w.field("code", m.code);
  w.field("error", m.error);
  w.field("retry_after_ms", m.retry_after_ms);
  w.end();
  return w.str();
}

std::string encode(const Progress& m) {
  JsonWriter w = message_writer(progress_schema(m.kind));
  w.field("id", m.id);
  w.field("instructions", m.instructions);
  w.end();
  return w.str();
}

std::string encode(const Done& m) {
  JsonWriter w = message_writer("ksim.job.done");
  w.field("id", m.id);
  w.field("state", to_string(m.state));
  w.field("exit_code", m.exit_code);
  w.field("error", m.error);
  w.field("report", m.report);
  w.end();
  return w.str();
}

std::string encode(const SweepProgress& m) {
  JsonWriter w = message_writer("ksim.sweep.progress");
  w.field("id", m.id);
  w.field("done", m.done);
  w.field("total", m.total);
  w.field("label", m.label);
  w.field("ok", m.ok);
  w.end();
  return w.str();
}

std::string encode(const SweepDone& m) {
  JsonWriter w = message_writer("ksim.sweep.done");
  w.field("id", m.id);
  w.field("state", to_string(m.state));
  w.field("points_failed", m.points_failed);
  w.field("report", m.report);
  w.end();
  return w.str();
}

std::string encode(const StatusReply& m) {
  JsonWriter w = message_writer("ksim.job.status");
  w.begin_array("jobs");
  for (const JobInfo& j : m.jobs) {
    w.begin_object();
    w.field("id", j.id);
    w.field("tenant", j.tenant);
    w.field("priority", j.priority);
    w.field("state", to_string(j.state));
    w.field("label", j.label);
    w.field("instructions", j.instructions);
    w.field("preemptions", j.preemptions);
    w.end();
  }
  w.end();
  w.end();
  return w.str();
}

std::string encode(const Ok& m) {
  JsonWriter w = message_writer("ksim.daemon.ok");
  w.field("message", m.message);
  w.end();
  return w.str();
}

// -- parse -------------------------------------------------------------------

namespace {

uint64_t as_uint(const JsonValue& v, std::string_view what) {
  const int64_t n = v.as_int(what);
  if (n < 0) throw Error("ksimd: " + std::string(what) + " must be >= 0");
  return static_cast<uint64_t>(n);
}

Progress parse_progress(const JsonValue& v, Progress::Kind kind) {
  Progress m;
  m.kind = kind;
  m.id = as_uint(v.at("id"), "id");
  m.instructions = as_uint(v.at("instructions"), "instructions");
  return m;
}

JobInfo parse_job_info(const JsonValue& v) {
  JobInfo j;
  j.id = as_uint(v.at("id"), "id");
  j.tenant = v.at("tenant").as_string("tenant");
  j.priority = static_cast<int>(v.at("priority").as_int("priority"));
  j.state = job_state_from_string(v.at("state").as_string("state"));
  j.label = v.at("label").as_string("label");
  j.instructions = as_uint(v.at("instructions"), "instructions");
  j.preemptions = as_uint(v.at("preemptions"), "preemptions");
  return j;
}

} // namespace

api::RunConfig job_config_from_json(const JsonValue& v) {
  if (!v.is_object()) throw Error("ksimd: \"config\" must be an object");
  api::RunConfig c;
  for (const auto& [key, val] : v.entries) {
    if (key == "workload") c.workload = val.as_string(key);
    else if (key == "isa") c.isa = val.as_string(key);
    else if (key == "model") c.model = val.as_string(key);
    else if (key == "bp") c.bp_kind = val.as_string(key);
    else if (key == "bp_penalty") c.bp_penalty = static_cast<int>(val.as_int(key));
    else if (key == "decode_cache") c.use_decode_cache = val.as_bool(key);
    else if (key == "prediction") c.use_prediction = val.as_bool(key);
    else if (key == "superblocks") c.use_superblocks = val.as_bool(key);
    else if (key == "jit") c.use_jit = val.as_bool(key);
    else if (key == "opstats") c.collect_op_stats = val.as_bool(key);
    else if (key == "max_instr") c.max_instructions = as_uint(val, key);
    else if (key == "seed") c.seed = static_cast<uint32_t>(as_uint(val, key));
    else if (key == "memory") c.memory = api::mem_geometry_from_json(val, "config");
    else if (api::apply_flat_mem_key(c.memory, key, val, "config")) continue;
    else throw Error("ksimd: unknown config key \"" + key + "\"");
  }
  if (c.workload.empty())
    throw Error("ksimd: job config needs a built-in \"workload\"");
  return c;
}

Message parse_message(std::string_view line) {
  const JsonValue doc = support::parse_json(line, "<ksimd message>");
  if (!doc.is_object()) throw Error("ksimd: message must be a JSON object");
  const std::string& schema = doc.at("schema").as_string("schema");
  const int64_t version = doc.at("schema_version").as_int("schema_version");
  if (version != kJsonSchemaVersion)
    throw Error("ksimd: schema_version " + std::to_string(version) +
                " unsupported (daemon speaks " +
                std::to_string(kJsonSchemaVersion) + ")");

  if (schema == "ksim.job.submit") {
    SubmitRequest m;
    m.tenant = doc.at("tenant").as_string("tenant");
    m.priority = static_cast<int>(doc.at("priority").as_int("priority"));
    m.config = job_config_from_json(doc.at("config"));
    return m;
  }
  if (schema == "ksim.sweep.submit") {
    SweepSubmitRequest m;
    m.tenant = doc.at("tenant").as_string("tenant");
    m.priority = static_cast<int>(doc.at("priority").as_int("priority"));
    m.manifest = doc.at("manifest").as_string("manifest");
    return m;
  }
  if (schema == "ksim.job.list") {
    ListRequest m;
    m.tenant = doc.at("tenant").as_string("tenant");
    return m;
  }
  if (schema == "ksim.job.cancel") {
    CancelRequest m;
    m.id = as_uint(doc.at("id"), "id");
    return m;
  }
  if (schema == "ksim.daemon.shutdown") {
    ShutdownRequest m;
    m.drain = doc.at("drain").as_bool("drain");
    return m;
  }
  if (schema == "ksim.job.accepted") {
    Accepted m;
    m.id = as_uint(doc.at("id"), "id");
    return m;
  }
  if (schema == "ksim.job.rejected") {
    Rejected m;
    m.code = doc.at("code").as_string("code");
    m.error = doc.at("error").as_string("error");
    m.retry_after_ms = static_cast<int>(doc.at("retry_after_ms").as_int("retry_after_ms"));
    return m;
  }
  if (schema == "ksim.job.progress")
    return parse_progress(doc, Progress::Kind::Running);
  if (schema == "ksim.job.preempted")
    return parse_progress(doc, Progress::Kind::Preempted);
  if (schema == "ksim.job.resumed")
    return parse_progress(doc, Progress::Kind::Resumed);
  if (schema == "ksim.job.done") {
    Done m;
    m.id = as_uint(doc.at("id"), "id");
    m.state = job_state_from_string(doc.at("state").as_string("state"));
    m.exit_code = static_cast<int>(doc.at("exit_code").as_int("exit_code"));
    m.error = doc.at("error").as_string("error");
    m.report = doc.at("report").as_string("report");
    return m;
  }
  if (schema == "ksim.sweep.progress") {
    SweepProgress m;
    m.id = as_uint(doc.at("id"), "id");
    m.done = as_uint(doc.at("done"), "done");
    m.total = as_uint(doc.at("total"), "total");
    m.label = doc.at("label").as_string("label");
    m.ok = doc.at("ok").as_bool("ok");
    return m;
  }
  if (schema == "ksim.sweep.done") {
    SweepDone m;
    m.id = as_uint(doc.at("id"), "id");
    m.state = job_state_from_string(doc.at("state").as_string("state"));
    m.points_failed = as_uint(doc.at("points_failed"), "points_failed");
    m.report = doc.at("report").as_string("report");
    return m;
  }
  if (schema == "ksim.job.status") {
    StatusReply m;
    const JsonValue& jobs = doc.at("jobs");
    if (!jobs.is_array()) throw Error("ksimd: \"jobs\" must be an array");
    m.jobs.reserve(jobs.array.size());
    for (const JsonValue& j : jobs.array) m.jobs.push_back(parse_job_info(j));
    return m;
  }
  if (schema == "ksim.daemon.ok") {
    Ok m;
    m.message = doc.at("message").as_string("message");
    return m;
  }
  throw Error("ksimd: unknown message schema \"" + schema + "\"");
}

} // namespace ksim::ksimd
