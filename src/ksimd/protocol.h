// ksimd — the wire protocol of the simulation service (DESIGN.md §10).
//
// Framing: one JSON document per line, '\n'-terminated, UTF-8, at most
// kMaxLineBytes per message.  Every document opens with the standard
// "schema"/"schema_version" header keys (DESIGN.md §7); the schema names the
// message kind.  Encoders use the compact JsonWriter style, so an encoded
// message is exactly one line and the encode/parse pair round-trips
// byte-for-byte (pinned by the tests/fixtures/ksimd fixtures).
//
// Requests (client → daemon):
//   ksim.job.submit      tenant, priority, config (the RunConfig payload)
//   ksim.sweep.submit    tenant, priority, manifest — a whole ksweep manifest
//                        as one request; the daemon fans the grid out into
//                        point jobs under the same quotas and preemption
//   ksim.job.list        tenant filter ("" = all)
//   ksim.job.cancel      id (a job id or a sweep id)
//   ksim.daemon.shutdown drain (finish queued work) or abort
//
// Replies and streamed events (daemon → client):
//   ksim.job.accepted    id — job admitted; events for it follow
//   ksim.job.rejected    typed admission error + retry_after_ms (the
//                        429-style overload contract)
//   ksim.job.progress    id, instructions — one per scheduler slice
//   ksim.job.preempted   id, instructions — evicted to a checkpoint
//   ksim.job.resumed     id, instructions — restored bit-identically
//   ksim.job.done        id, terminal state, exit code, error, and the full
//                        ksim.run report document as an opaque string (the
//                        daemon forwards the bytes verbatim, so a resumed
//                        job's report diffs cleanly against a local run)
//   ksim.sweep.progress  id, done, total, label, ok — one per finished point
//   ksim.sweep.done      id, terminal state, points_failed, and the full
//                        ksim.sweep document as an opaque string — rendered
//                        from the same spec-ordered points as a local
//                        `ksim sweep --json`, so the bytes diff cleanly
//   ksim.job.status      the ksim.job.list reply
//   ksim.daemon.ok       generic acknowledgement
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "api/run_config.h"
#include "support/json.h"

namespace ksim::ksimd {

/// Hard per-message size limit.  Configs are small; anything larger is a
/// confused or malicious client and the connection is dropped after a typed
/// error instead of buffering without bound.
inline constexpr size_t kMaxLineBytes = 1 << 20;

/// Incremental '\n'-splitter for the line-delimited framing.  feed() accepts
/// arbitrary byte chunks (messages may arrive split across any number of
/// reads); next() yields complete lines in order.  A line exceeding the
/// limit sets overflowed() and the splitter stops accepting input.
class LineSplitter {
public:
  explicit LineSplitter(size_t max_line_bytes = kMaxLineBytes)
      : max_(max_line_bytes) {}

  void feed(std::string_view bytes);
  std::optional<std::string> next();
  bool overflowed() const { return overflow_; }

private:
  size_t max_;
  std::string partial_;
  std::deque<std::string> lines_;
  bool overflow_ = false;
};

// -- typed messages ----------------------------------------------------------

/// Job states as they appear on the wire and in listings.
enum class JobState { Queued, Running, Preempted, Done, Failed, Cancelled };
const char* to_string(JobState state);
JobState job_state_from_string(std::string_view s);

struct SubmitRequest {
  std::string tenant = "default";
  int priority = 0;            ///< higher preempts lower
  api::RunConfig config;       ///< simulation-relevant fields only
};

/// Sweep-as-a-service (kdse): one request fans a whole sweep manifest out
/// into point jobs.  The manifest rides as an opaque string and is parsed by
/// api::SweepSpec::from_manifest on the daemon, so client and daemon agree
/// on exactly one manifest grammar.
struct SweepSubmitRequest {
  std::string tenant = "default";
  int priority = 0;            ///< applied to every point job
  std::string manifest;        ///< the sweep manifest document, verbatim
};

struct ListRequest {
  std::string tenant;          ///< "" = all tenants
};

struct CancelRequest {
  uint64_t id = 0;
};

struct ShutdownRequest {
  bool drain = true;           ///< finish queued+running work before exiting
};

struct Accepted {
  uint64_t id = 0;
};

/// Typed admission/permanent errors.  Codes: "queue_full", "quota_queued",
/// "quota_instructions", "bad_config", "draining", "oversized",
/// "bad_message", "unknown_job".
struct Rejected {
  std::string code;
  std::string error;
  int retry_after_ms = 0;      ///< 0 = not retryable
};

struct Progress {
  enum class Kind { Running, Preempted, Resumed };
  Kind kind = Kind::Running;
  uint64_t id = 0;
  uint64_t instructions = 0;
};

struct Done {
  uint64_t id = 0;
  JobState state = JobState::Done; ///< Done | Failed | Cancelled
  int exit_code = 0;
  std::string error;           ///< Failed only
  std::string report;          ///< the full ksim.run document, verbatim
};

/// One line per finished sweep point, in completion order.
struct SweepProgress {
  uint64_t id = 0;             ///< the sweep id, not the point job id
  uint64_t done = 0;
  uint64_t total = 0;
  std::string label;           ///< "<workload>@<ISA> <model> [<geometry>]"
  bool ok = true;
};

struct SweepDone {
  uint64_t id = 0;
  JobState state = JobState::Done; ///< Done | Cancelled
  uint64_t points_failed = 0;
  std::string report;          ///< the full ksim.sweep document, verbatim
};

struct JobInfo {
  uint64_t id = 0;
  std::string tenant;
  int priority = 0;
  JobState state = JobState::Queued;
  std::string label;           ///< "<workload>@<ISA>"
  uint64_t instructions = 0;   ///< progress (resume point when preempted)
  uint64_t preemptions = 0;
};

struct StatusReply {
  std::vector<JobInfo> jobs;
};

struct Ok {
  std::string message;
};

using Message = std::variant<SubmitRequest, SweepSubmitRequest, ListRequest,
                             CancelRequest, ShutdownRequest, Accepted, Rejected,
                             Progress, Done, SweepProgress, SweepDone,
                             StatusReply, Ok>;

// -- encode ------------------------------------------------------------------
// Every encoder returns exactly one '\n'-terminated line.

std::string encode(const SubmitRequest& m);
std::string encode(const SweepSubmitRequest& m);
std::string encode(const ListRequest& m);
std::string encode(const CancelRequest& m);
std::string encode(const ShutdownRequest& m);
std::string encode(const Accepted& m);
std::string encode(const Rejected& m);
std::string encode(const Progress& m);
std::string encode(const Done& m);
std::string encode(const SweepProgress& m);
std::string encode(const SweepDone& m);
std::string encode(const StatusReply& m);
std::string encode(const Ok& m);

// -- parse -------------------------------------------------------------------

/// Parses one protocol line into its typed message.  Throws ksim::Error on
/// malformed JSON, an unknown schema, a schema_version mismatch, or missing/
/// mistyped fields — the daemon answers with a "bad_message" rejection.
Message parse_message(std::string_view line);

/// The RunConfig payload of a submit message ("config" object).  Unknown
/// keys are rejected so client/daemon version skew fails loudly.  Host-side
/// RunConfig fields (echo, trace, profiling, checkpoint sinks) are not part
/// of the protocol; the daemon owns them.
api::RunConfig job_config_from_json(const support::JsonValue& v);

} // namespace ksim::ksimd
