// Error handling primitives shared by every ksim module.
//
// Fatal, programmer-facing failures (malformed ADL shipped with the library,
// inconsistent internal state) throw ksim::Error.  User-facing failures in
// user-supplied inputs (assembly files, MiniC sources) are collected in a
// ksim::DiagEngine so that several problems can be reported at once.
#pragma once

#include <stdexcept>
#include <string>

namespace ksim {

/// Exception type for unrecoverable errors inside the framework.
class Error : public std::runtime_error {
public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Throws ksim::Error with the given message if `condition` is false.
inline void check(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

} // namespace ksim
