// Error handling primitives shared by every ksim module.
//
// Fatal, programmer-facing failures (malformed ADL shipped with the library,
// inconsistent internal state) throw ksim::Error.  User-facing failures in
// user-supplied inputs (assembly files, MiniC sources) are collected in a
// ksim::DiagEngine so that several problems can be reported at once.
#pragma once

#include <stdexcept>
#include <string>

namespace ksim {

/// Exception type for unrecoverable errors inside the framework.
class Error : public std::runtime_error {
public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// User-facing configuration errors: a flag, manifest or protocol value that
/// names an impossible machine (non-power-of-two cache geometry, zero ports).
/// CLI entry points map ConfigError to exit code 2 — the usage contract —
/// so scripts can tell "bad invocation" from "the simulation failed" (1).
class ConfigError : public Error {
public:
  using Error::Error;
};

/// Throws ksim::Error with the given message if `condition` is false.
inline void check(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

} // namespace ksim
