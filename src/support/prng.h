// Deterministic pseudo-random number generator (xorshift64*), used for
// workload input generation and property tests.  Deterministic across
// platforms, unlike std::rand or distribution implementations.
#pragma once

#include <cstdint>

namespace ksim {

class Prng {
public:
  explicit Prng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed ? seed : 1) {}

  uint64_t next_u64() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  /// Uniform value in [0, bound). bound must be > 0.
  uint32_t next_below(uint32_t bound) { return next_u32() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  int32_t next_range(int32_t lo, int32_t hi) {
    return lo + static_cast<int32_t>(next_below(static_cast<uint32_t>(hi - lo + 1)));
  }

private:
  uint64_t state_;
};

} // namespace ksim
