#include "support/diag.h"

#include <sstream>

#include "support/error.h"

namespace ksim {

std::string SrcLoc::to_string() const {
  std::ostringstream os;
  os << (file.empty() ? "<unknown>" : file);
  if (line > 0) {
    os << ':' << line;
    if (column > 0) os << ':' << column;
  }
  return os.str();
}

std::string Diag::to_string() const {
  const char* sev = severity == DiagSeverity::Error     ? "error"
                    : severity == DiagSeverity::Warning ? "warning"
                                                        : "note";
  return loc.to_string() + ": " + sev + ": " + message;
}

void DiagEngine::error(SrcLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::Error, std::move(loc), std::move(message)});
  ++error_count_;
}

void DiagEngine::warning(SrcLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::Warning, std::move(loc), std::move(message)});
}

void DiagEngine::note(SrcLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::Note, std::move(loc), std::move(message)});
}

std::string DiagEngine::to_string() const {
  std::string out;
  for (const Diag& d : diags_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

void DiagEngine::throw_if_errors() const {
  if (has_errors()) throw Error(to_string());
}

} // namespace ksim
