#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "support/error.h"
#include "support/strings.h"

namespace ksim::support {

// ---------------------------------------------------------------------------
// JsonValue accessors

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : entries)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  check(v != nullptr, "json: missing required key \"" + std::string(key) + "\"");
  return *v;
}

const std::string& JsonValue::as_string(std::string_view what) const {
  check(kind == Kind::String, "json: " + std::string(what) + " must be a string");
  return string;
}

double JsonValue::as_number(std::string_view what) const {
  check(kind == Kind::Number, "json: " + std::string(what) + " must be a number");
  return number;
}

int64_t JsonValue::as_int(std::string_view what) const {
  const double d = as_number(what);
  check(std::nearbyint(d) == d, "json: " + std::string(what) + " must be an integer");
  return static_cast<int64_t>(d);
}

bool JsonValue::as_bool(std::string_view what) const {
  check(kind == Kind::Bool, "json: " + std::string(what) + " must be a boolean");
  return boolean;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
public:
  Parser(std::string_view text, std::string_view origin)
      : text_(text), origin_(origin) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    check(pos_ == text_.size(), where() + ": trailing characters after document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error(where() + ": " + what);
  }

  std::string where() const {
    int line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return std::string(origin_) + ":" + std::to_string(line) + ":" +
           std::to_string(col);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(std::string_view kw) {
    if (text_.substr(pos_).substr(0, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue v;
    if (c == '{' || c == '[') {
      // Containers recurse; a malicious "[[[[..." input would otherwise
      // overflow the host stack long before exhausting memory.
      if (depth_ >= kMaxNestingDepth) fail("nesting depth limit exceeded");
      ++depth_;
      v = c == '{' ? parse_object() : parse_array();
      --depth_;
      return v;
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (consume_keyword("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_keyword("false")) {
      v.kind = JsonValue::Kind::Bool;
      return v;
    }
    if (consume_keyword("null")) return v;
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      v.entries.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (no surrogate-pair handling; our documents are ASCII).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* endp = nullptr;
    const double d = std::strtod(token.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') fail("malformed number " + token);
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::string_view origin_;
  size_t pos_ = 0;
  int depth_ = 0;
};

} // namespace

JsonValue parse_json(std::string_view text, std::string_view origin) {
  return Parser(text, origin).parse_document();
}

// ---------------------------------------------------------------------------
// Writer

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strf("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        else
          out.push_back(c);
    }
  }
  return out;
}

void JsonWriter::prefix(std::string_view key) {
  if (!stack_.empty()) {
    if (has_items_.back()) out_ += style_ == JsonStyle::Compact ? ", " : ",";
    has_items_.back() = true;
    if (style_ == JsonStyle::Pretty) {
      out_ += "\n";
      out_.append(stack_.size() * 2, ' ');
    }
  }
  if (!key.empty()) {
    check(stack_.empty() || stack_.back() == '{',
          "json: keyed field outside an object");
    out_ += '"';
    out_ += json_escape(key);
    out_ += "\": ";
  } else if (!stack_.empty()) {
    check(stack_.back() == '[', "json: keyless element outside an array");
  }
}

void JsonWriter::open(char bracket, std::string_view key) {
  prefix(key);
  out_ += bracket;
  stack_.push_back(bracket == '{' ? '{' : '[');
  has_items_.push_back(false);
}

void JsonWriter::end() {
  check(!stack_.empty(), "json: end() with no open scope");
  const char open_bracket = stack_.back();
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items && style_ == JsonStyle::Pretty) {
    out_ += "\n";
    out_.append(stack_.size() * 2, ' ');
  }
  out_ += open_bracket == '{' ? '}' : ']';
}

void JsonWriter::raw(std::string_view key, std::string_view rendered) {
  prefix(key);
  out_ += rendered;
}

void JsonWriter::field(std::string_view key, std::string_view value) {
  std::string rendered;
  rendered += '"';
  rendered += json_escape(value);
  rendered += '"';
  raw(key, rendered);
}

void JsonWriter::field(std::string_view key, double value) {
  raw(key, strf("%.8g", value));
}

void JsonWriter::field(std::string_view key, uint64_t value) {
  raw(key, std::to_string(value));
}

void JsonWriter::field(std::string_view key, int64_t value) {
  raw(key, std::to_string(value));
}

void JsonWriter::field(std::string_view key, bool value) {
  raw(key, value ? "true" : "false");
}

void JsonWriter::element(std::string_view value) { field({}, value); }
void JsonWriter::element(double value) { field({}, value); }
void JsonWriter::element(uint64_t value) { field({}, value); }

std::string JsonWriter::str() const {
  check(stack_.empty(), "json: str() with unclosed scopes");
  return out_ + "\n";
}

} // namespace ksim::support
