// Diagnostic collection for tools that process user input (assembler,
// linker, MiniC compiler).  A DiagEngine accumulates located messages so a
// whole translation unit can be checked in one pass.
#pragma once

#include <string>
#include <vector>

namespace ksim {

/// A location in a user-supplied text input.
struct SrcLoc {
  std::string file; ///< file name (or pseudo name such as "<memory>")
  int line = 0;     ///< 1-based line number; 0 = unknown
  int column = 0;   ///< 1-based column; 0 = unknown

  std::string to_string() const;
};

enum class DiagSeverity { Note, Warning, Error };

/// One diagnostic message with its source location.
struct Diag {
  DiagSeverity severity = DiagSeverity::Error;
  SrcLoc loc;
  std::string message;

  std::string to_string() const;
};

/// Collects diagnostics for one tool invocation.
class DiagEngine {
public:
  void error(SrcLoc loc, std::string message);
  void warning(SrcLoc loc, std::string message);
  void note(SrcLoc loc, std::string message);

  bool has_errors() const { return error_count_ > 0; }
  int error_count() const { return error_count_; }
  const std::vector<Diag>& diags() const { return diags_; }

  /// All diagnostics rendered one per line.
  std::string to_string() const;

  /// Throws ksim::Error carrying all diagnostics if any error was reported.
  void throw_if_errors() const;

private:
  std::vector<Diag> diags_;
  int error_count_ = 0;
};

} // namespace ksim
