// Minimal JSON support shared by every machine-readable surface of the
// toolchain: a recursive-descent parser (sweep manifests, tooling that reads
// our own reports back) and an insertion-ordered writer (the versioned report
// schema, DESIGN.md §7).
//
// The writer is deliberately order-preserving: all ksim JSON outputs promise
// *stable key ordering* — keys appear in the documented schema order on every
// run, so reports diff cleanly and downstream parsers may stream.  Numbers
// are emitted with %.8g (doubles) or exactly (integers); strings are escaped
// per RFC 8259 (the subset we generate: `"`, `\`, control characters).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ksim::support {

/// Version of every ksim.* JSON document schema ("schema_version" header
/// key; DESIGN.md §7).  All document kinds version together — bump on any
/// incompatible change to any of them.
inline constexpr int kJsonSchemaVersion = 3;

/// Maximum container nesting the parser accepts.  The recursive-descent
/// parser uses one host stack frame per level; deeper input is rejected with
/// a diagnostic instead of overflowing the stack.  Our own documents nest
/// about six levels deep.
inline constexpr int kMaxNestingDepth = 64;

/// A parsed JSON value.  Objects preserve the order keys appeared in the
/// input (`entries`), with an index for by-name lookup.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> entries; ///< object, in order

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_string() const { return kind == Kind::String; }
  bool is_number() const { return kind == Kind::Number; }

  /// Object member by key, or nullptr (also when this is not an object).
  const JsonValue* find(std::string_view key) const;

  /// Typed accessors that throw ksim::Error when the shape is wrong — used
  /// by the manifest reader so malformed input produces a clear diagnostic.
  const JsonValue& at(std::string_view key) const;
  const std::string& as_string(std::string_view what) const;
  double as_number(std::string_view what) const;
  int64_t as_int(std::string_view what) const;
  bool as_bool(std::string_view what) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws ksim::Error with line/column context on malformed input.
JsonValue parse_json(std::string_view text, std::string_view origin = "<json>");

/// Escapes a string for inclusion in a JSON document (without the quotes).
std::string json_escape(std::string_view s);

/// Output styles for JsonWriter.  Pretty is the historical two-space-indent
/// multi-line form every checked-in report uses; Compact renders the whole
/// document on a single line (`{"a": 1, "b": [2, 3]}`) for line-delimited
/// framing — the ksimd service protocol sends one document per '\n'.
enum class JsonStyle { Pretty, Compact };

/// Insertion-ordered JSON document builder.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.field("schema_version", 1);
///   w.begin_array("points"); ... w.end();
///   w.end();
///   std::string doc = w.str();
/// The writer indents two spaces per level (JsonStyle::Pretty) or emits one
/// line (JsonStyle::Compact) and never reorders keys, so the emitted document
/// is byte-stable for identical field sequences.
class JsonWriter {
public:
  JsonWriter() = default;
  explicit JsonWriter(JsonStyle style) : style_(style) {}
  void begin_object() { open('{'); }
  void begin_object(std::string_view key) { open('{', key); }
  void begin_array(std::string_view key) { open('[', key); }
  void begin_array() { open('['); }
  void end();

  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value) {
    field(key, std::string_view(value));
  }
  void field(std::string_view key, double value);
  void field(std::string_view key, uint64_t value);
  void field(std::string_view key, int64_t value);
  void field(std::string_view key, int value) {
    field(key, static_cast<int64_t>(value));
  }
  void field(std::string_view key, unsigned value) {
    field(key, static_cast<uint64_t>(value));
  }
  void field(std::string_view key, bool value);

  /// Array element (no key).
  void element(std::string_view value);
  void element(double value);
  void element(uint64_t value);

  /// The finished document (all scopes must be closed), ending in '\n'.
  std::string str() const;

private:
  void open(char bracket, std::string_view key = {});
  void prefix(std::string_view key);
  void raw(std::string_view key, std::string_view rendered);

  JsonStyle style_ = JsonStyle::Pretty;
  std::string out_;
  std::vector<char> stack_;      ///< open scopes: '{' or '['
  std::vector<bool> has_items_;  ///< parallel: did the scope emit anything yet
};

} // namespace ksim::support
