// Bit-manipulation helpers used by encodings, the assembler, and the
// simulator's field extraction.
#pragma once

#include <cstdint>

#include "support/error.h"

namespace ksim {

/// Extracts bits [hi:lo] (inclusive, hi >= lo) of `word`, right-aligned.
constexpr uint32_t extract_bits(uint32_t word, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  const uint32_t mask = width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
  return (word >> lo) & mask;
}

/// Inserts `value` into bits [hi:lo] of `word` and returns the result.
constexpr uint32_t insert_bits(uint32_t word, unsigned hi, unsigned lo, uint32_t value) {
  const unsigned width = hi - lo + 1;
  const uint32_t mask = width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
  return (word & ~(mask << lo)) | ((value & mask) << lo);
}

/// Sign-extends the low `bits` bits of `value` to 32 bits.
constexpr int32_t sign_extend(uint32_t value, unsigned bits) {
  const uint32_t m = 1u << (bits - 1);
  value &= (bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1u));
  return static_cast<int32_t>((value ^ m) - m);
}

/// True if `value` fits in a signed `bits`-bit immediate.
constexpr bool fits_signed(int64_t value, unsigned bits) {
  const int64_t lo = -(int64_t{1} << (bits - 1));
  const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True if `value` fits in an unsigned `bits`-bit immediate.
constexpr bool fits_unsigned(int64_t value, unsigned bits) {
  return value >= 0 && value <= static_cast<int64_t>((uint64_t{1} << bits) - 1);
}

/// True if `x` is a power of two (and non-zero).
constexpr bool is_pow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_pow2(uint64_t x) {
  unsigned n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

} // namespace ksim
