#include "support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ksim {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_int(std::string_view s, int64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    s.remove_prefix(1);
    if (s.empty()) return false;
  }
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
    if (s.empty()) return false;
  }
  uint64_t acc = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F')
      digit = c - 'A' + 10;
    else
      return false;
    acc = acc * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
    if (acc > (uint64_t{1} << 62)) return false; // overflow guard
  }
  out = neg ? -static_cast<int64_t>(acc) : static_cast<int64_t>(acc);
  return true;
}

std::string hex32(uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", value);
  return buf;
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

} // namespace ksim
