// Checksummed binary stream I/O for the kckpt checkpoint/restore subsystem
// (see DESIGN.md §5c).  ByteWriter serializes into a growable buffer with
// fixed little-endian encodings (deterministic across platforms, so
// checkpoint bytes can be compared bit-for-bit by the replay self-check);
// ByteReader is the bounds-checked inverse that throws ksim::Error on any
// underrun instead of silently reading garbage from a truncated snapshot.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ksim::support {

class ByteWriter {
public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { raw(&v, sizeof v); }
  void u32(uint32_t v) { raw(&v, sizeof v); }
  void u64(uint64_t v) { raw(&v, sizeof v); }
  void i32(int32_t v) { raw(&v, sizeof v); }

  /// Length-prefixed string (u32 length + raw bytes).
  void str(std::string_view s) {
    u32(static_cast<uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  /// Raw bytes, no length prefix (callers encode their own framing).
  void bytes(const void* data, size_t size) { raw(data, size); }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

private:
  void raw(const void* data, size_t size) {
    const size_t old = buf_.size();
    buf_.resize(old + size);
    std::memcpy(buf_.data() + old, data, size);
  }

  std::vector<uint8_t> buf_;
};

/// Reads the encodings ByteWriter produces.  Every accessor validates the
/// remaining size first and throws ksim::Error("<context>: truncated data")
/// on underrun, so damaged checkpoints fail loudly and without partial
/// effects (callers parse fully before mutating any live object).
class ByteReader {
public:
  explicit ByteReader(std::span<const uint8_t> data, std::string context = "stream")
      : data_(data), context_(std::move(context)) {}

  uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  uint16_t u16() { return fixed<uint16_t>(); }
  uint32_t u32() { return fixed<uint32_t>(); }
  uint64_t u64() { return fixed<uint64_t>(); }
  int32_t i32() { return static_cast<int32_t>(fixed<uint32_t>()); }

  std::string str();
  void bytes(void* out, size_t size);

  /// Borrow `size` bytes in place (valid while the underlying span lives).
  std::span<const uint8_t> view(size_t size);

  size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  /// Throws unless the stream was consumed exactly (catches format drift).
  void expect_end() const;

private:
  template <typename T>
  T fixed() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(size_t n) const;

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  std::string context_;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`; the
/// per-section integrity check of the kckpt file format.
uint32_t crc32(const void* data, size_t size);

} // namespace ksim::support
