// Small string utilities shared across the tools (no locale dependence,
// deterministic behaviour).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ksim {

/// Removes leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on runs of whitespace, dropping empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a decimal/hex (0x...) integer; returns false on malformed input.
bool parse_int(std::string_view s, int64_t& out);

/// Formats `value` as 0x%08x.
std::string hex32(uint32_t value);

/// printf-style formatting into a std::string (for tables and reports).
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace ksim
