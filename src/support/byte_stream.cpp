#include "support/byte_stream.h"

#include <array>

#include "support/error.h"

namespace ksim::support {

std::string ByteReader::str() {
  const uint32_t size = u32();
  need(size);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), size);
  pos_ += size;
  return out;
}

void ByteReader::bytes(void* out, size_t size) {
  need(size);
  std::memcpy(out, data_.data() + pos_, size);
  pos_ += size;
}

std::span<const uint8_t> ByteReader::view(size_t size) {
  need(size);
  std::span<const uint8_t> out = data_.subspan(pos_, size);
  pos_ += size;
  return out;
}

void ByteReader::expect_end() const {
  check(at_end(), context_ + ": trailing bytes after the last field");
}

void ByteReader::need(size_t n) const {
  check(n <= data_.size() - pos_, context_ + ": truncated data");
}

namespace {

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

} // namespace

uint32_t crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

} // namespace ksim::support
