// Disassembler for K-ISA code (used by the simulator's debugging facilities
// and by tests to round-trip the assembler).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "isa/optable.h"

namespace ksim::kasm {

/// Disassembles a single operation word.  Returns e.g. "add r4, r5, r6".
std::string disassemble_op(const isa::IsaSet& set, const isa::IsaInfo& isa, uint32_t word);

/// Disassembles one *instruction* (a stop-bit delimited group) starting at
/// `words[0]`; consumes up to issue-width words.  Returns the text (slots
/// joined with " || ") and sets `consumed` to the number of words used.
std::string disassemble_instr(const isa::IsaSet& set, const isa::IsaInfo& isa,
                              std::span<const uint32_t> words, size_t& consumed);

} // namespace ksim::kasm
