#include "kasm/assembler.h"

#include <map>
#include <optional>

#include "isa/kisa.h"
#include "support/bits.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::kasm {
namespace {

using isa::OpInfo;

enum Section : int { kText = 0, kData = 1, kBss = 2, kNumSections = 3 };

const char* const kSectionNames[kNumSections] = {".text", ".data", ".bss"};

struct Operand {
  enum class Kind { Reg, Imm, SymImm, Mem };
  Kind kind = Kind::Imm;
  unsigned reg = 0;      ///< Reg: register index; Mem: base register
  int64_t imm = 0;       ///< Imm: value; Mem: displacement; SymImm: addend
  std::string sym;       ///< SymImm: symbol name
};

struct ParsedOp {
  const OpInfo* info = nullptr;
  std::vector<Operand> operands;
};

struct Group {
  uint32_t addr = 0; ///< .text offset
  std::vector<ParsedOp> ops;
  int line = 0;
  const isa::IsaInfo* isa = nullptr;
};

struct SymbolInfo {
  int section = -1; ///< -1 = undefined
  uint32_t value = 0;
  uint32_t size = 0;
  bool is_global = false;
  bool is_func = false;
  bool defined = false;
  bool referenced = false;
};

struct PendingReloc {
  int section = kText;
  uint32_t offset = 0;
  uint32_t type = 0;
  std::string symbol;
  int32_t addend = 0;
};

std::optional<unsigned> parse_register(std::string_view tok) {
  if (tok == "zero") return 0u;
  if (tok == "ra") return 1u;
  if (tok == "sp") return 2u;
  if (tok.size() >= 2 && (tok[0] == 'r' || tok[0] == 'R')) {
    int64_t n = 0;
    if (parse_int(tok.substr(1), n) && n >= 0 && n < 32) return static_cast<unsigned>(n);
  }
  return std::nullopt;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  return out;
}

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == '.' || c == '$';
}
bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }

class Assembler {
public:
  Assembler(std::string_view source, const AsmOptions& options, DiagEngine& diags)
      : source_(source),
        options_(options),
        set_(options.isa_set != nullptr ? *options.isa_set : isa::kisa()),
        diags_(diags) {
    asm_lines_.intern_file(options_.file_name);
  }

  elf::ElfFile run() {
    active_isa_ = set_.find_isa(options_.initial_isa);
    if (active_isa_ == nullptr) {
      error(0, "unknown initial ISA '" + options_.initial_isa + "'");
      return {};
    }
    int line_no = 0;
    for (std::string_view raw : split(source_, '\n')) {
      ++line_no;
      process_line(raw, line_no);
    }
    if (!current_func_.empty())
      error(line_no, "missing .endfunc for function '" + current_func_ + "'");
    encode_groups();
    return build_object();
  }

private:
  SrcLoc loc(int line) const { return SrcLoc{options_.file_name, line, 0}; }
  void error(int line, std::string msg) { diags_.error(loc(line), std::move(msg)); }
  void warning(int line, std::string msg) { diags_.warning(loc(line), std::move(msg)); }

  uint32_t& offset(int section) { return offsets_[section]; }
  std::vector<uint8_t>& data(int section) { return data_[section]; }

  // -- line processing ---------------------------------------------------------

  void process_line(std::string_view raw, int line) {
    std::string_view s = raw;
    // Strip comments ('#' anywhere, but not inside string literals).
    bool in_str = false;
    size_t cut = s.size();
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '"' && (i == 0 || s[i - 1] != '\\')) in_str = !in_str;
      if (s[i] == '#' && !in_str) {
        cut = i;
        break;
      }
    }
    s = trim(s.substr(0, cut));
    if (s.empty()) return;

    // Labels (possibly several on one line).
    while (!s.empty() && is_ident_start(s[0])) {
      size_t n = 1;
      while (n < s.size() && is_ident_char(s[n])) ++n;
      if (n < s.size() && s[n] == ':') {
        define_label(std::string(s.substr(0, n)), line);
        s = trim(s.substr(n + 1));
        continue;
      }
      break;
    }
    if (s.empty()) return;

    if (s[0] == '.') {
      process_directive(s, line);
      return;
    }
    process_instruction(s, line);
  }

  void define_label(const std::string& name, int line) {
    SymbolInfo& sym = symbols_[name];
    if (sym.defined) {
      error(line, "redefinition of label '" + name + "'");
      return;
    }
    sym.defined = true;
    sym.section = section_;
    sym.value = offset(section_);
  }

  // -- directives ---------------------------------------------------------------

  void process_directive(std::string_view s, int line) {
    const auto tokens = split_ws(s);
    const std::string dir = lower(tokens[0]);
    auto rest_after = [&](std::string_view d) {
      return trim(s.substr(d.size()));
    };

    if (dir == ".text") {
      section_ = kText;
    } else if (dir == ".data") {
      section_ = kData;
    } else if (dir == ".bss") {
      section_ = kBss;
    } else if (dir == ".isa") {
      if (tokens.size() != 2) {
        error(line, ".isa expects one ISA name");
        return;
      }
      const isa::IsaInfo* isa = set_.find_isa(upper(tokens[1]));
      if (isa == nullptr)
        error(line, "unknown ISA '" + std::string(tokens[1]) + "'");
      else
        active_isa_ = isa;
    } else if (dir == ".global" || dir == ".globl") {
      if (tokens.size() != 2) {
        error(line, ".global expects one symbol");
        return;
      }
      symbols_[std::string(tokens[1])].is_global = true;
    } else if (dir == ".align") {
      int64_t n = 0;
      if (tokens.size() != 2 || !parse_int(tokens[1], n) || !is_pow2(static_cast<uint64_t>(n))) {
        error(line, ".align expects a power-of-two byte count");
        return;
      }
      align_to(static_cast<uint32_t>(n));
    } else if (dir == ".word" || dir == ".half" || dir == ".byte") {
      emit_data_values(dir, rest_after(dir), line);
    } else if (dir == ".ascii" || dir == ".asciz") {
      emit_string(rest_after(dir), dir == ".asciz", line);
    } else if (dir == ".space") {
      int64_t n = 0;
      if (tokens.size() != 2 || !parse_int(tokens[1], n) || n < 0) {
        error(line, ".space expects a byte count");
        return;
      }
      emit_zeros(static_cast<uint32_t>(n));
    } else if (dir == ".func") {
      if (tokens.size() != 2) {
        error(line, ".func expects one name");
        return;
      }
      if (!current_func_.empty()) {
        error(line, ".func inside function '" + current_func_ + "'");
        return;
      }
      current_func_ = std::string(tokens[1]);
      define_label(current_func_, line);
      SymbolInfo& sym = symbols_[current_func_];
      sym.is_func = true;
      func_start_ = offset(kText);
    } else if (dir == ".endfunc") {
      if (current_func_.empty()) {
        error(line, ".endfunc without .func");
        return;
      }
      symbols_[current_func_].size = offset(kText) - func_start_;
      current_func_.clear();
    } else if (dir == ".file") {
      const auto str = parse_string_literal(rest_after(dir), line);
      if (str) src_file_ = src_lines_.intern_file(*str);
    } else if (dir == ".loc") {
      int64_t n = 0;
      if (tokens.size() != 2 || !parse_int(tokens[1], n) || n < 0) {
        error(line, ".loc expects a line number");
        return;
      }
      src_line_ = static_cast<uint32_t>(n);
      src_line_pending_ = true;
    } else {
      error(line, "unknown directive '" + dir + "'");
    }
  }

  void align_to(uint32_t alignment) {
    uint32_t& off = offset(section_);
    const uint32_t aligned = (off + alignment - 1) & ~(alignment - 1);
    if (section_ != kBss) data(section_).resize(aligned, 0);
    off = aligned;
  }

  void emit_zeros(uint32_t count) {
    if (section_ != kBss) data(section_).resize(data(section_).size() + count, 0);
    offset(section_) += count;
  }

  void emit_data_values(const std::string& dir, std::string_view rest, int line) {
    const unsigned size = dir == ".word" ? 4 : dir == ".half" ? 2 : 1;
    if (section_ == kBss) {
      error(line, "data directive in .bss");
      return;
    }
    for (std::string_view item : split(rest, ',')) {
      item = trim(item);
      if (item.empty()) {
        error(line, "empty value in " + dir);
        continue;
      }
      int64_t value = 0;
      if (parse_int(item, value)) {
        if (size < 4 && !fits_signed(value, size * 8) && !fits_unsigned(value, size * 8))
          error(line, "value " + std::string(item) + " does not fit in " + dir);
        append_le(section_, static_cast<uint32_t>(value), size);
      } else if (size == 4) {
        // symbol[+/-offset]
        std::string sym;
        int64_t addend = 0;
        if (!parse_symbol_expr(item, sym, addend)) {
          error(line, "malformed value '" + std::string(item) + "'");
          continue;
        }
        relocs_.push_back({section_, offset(section_), elf::R_KISA_ABS32, sym,
                           static_cast<int32_t>(addend)});
        symbols_[sym].referenced = true;
        append_le(section_, 0, 4);
      } else {
        error(line, "symbolic values only allowed in .word");
      }
    }
  }

  void emit_string(std::string_view rest, bool zero_terminate, int line) {
    if (section_ == kBss) {
      error(line, "string data in .bss");
      return;
    }
    const auto str = parse_string_literal(rest, line);
    if (!str) return;
    for (char c : *str) append_le(section_, static_cast<uint8_t>(c), 1);
    if (zero_terminate) append_le(section_, 0, 1);
  }

  std::optional<std::string> parse_string_literal(std::string_view s, int line) {
    s = trim(s);
    if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
      error(line, "expected a string literal");
      return std::nullopt;
    }
    s = s.substr(1, s.size() - 2);
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '\\') {
        out.push_back(s[i]);
        continue;
      }
      ++i;
      if (i >= s.size()) {
        error(line, "trailing backslash in string literal");
        return std::nullopt;
      }
      switch (s[i]) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case '0': out.push_back('\0'); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        default:
          error(line, std::string("unknown escape '\\") + s[i] + "'");
          return std::nullopt;
      }
    }
    return out;
  }

  void append_le(int section, uint32_t value, unsigned size) {
    for (unsigned i = 0; i < size; ++i)
      data(section).push_back(static_cast<uint8_t>(value >> (8 * i)));
    offset(section) += size;
  }

  // -- instructions --------------------------------------------------------------

  void process_instruction(std::string_view s, int line) {
    if (section_ != kText) {
      error(line, "instruction outside .text");
      return;
    }
    // Split the `||` group.
    std::vector<std::string_view> slots;
    size_t start = 0;
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      if (s[i] == '|' && s[i + 1] == '|') {
        slots.push_back(trim(s.substr(start, i - start)));
        start = i + 2;
        ++i;
      }
    }
    slots.push_back(trim(s.substr(start)));
    const bool in_group = slots.size() > 1;

    std::vector<std::vector<ParsedOp>> expanded; // per slot: 1..n ops
    for (std::string_view slot : slots) {
      if (slot.empty()) {
        error(line, "empty slot in `||` group");
        return;
      }
      auto ops = parse_slot(slot, line);
      if (ops.empty()) return; // error already reported
      if (in_group && ops.size() > 1) {
        error(line, "multi-operation pseudo instruction inside `||` group");
        return;
      }
      expanded.push_back(std::move(ops));
    }

    if (in_group) {
      std::vector<ParsedOp> group_ops;
      for (auto& ops : expanded) group_ops.push_back(std::move(ops.front()));
      emit_group(std::move(group_ops), line);
    } else {
      // A single slot may have expanded into several sequential instructions.
      for (auto& op : expanded.front()) {
        std::vector<ParsedOp> one;
        one.push_back(std::move(op));
        emit_group(std::move(one), line);
      }
    }
  }

  void emit_group(std::vector<ParsedOp> ops, int line) {
    if (static_cast<int>(ops.size()) > active_isa_->issue_width) {
      error(line, strf("instruction group of %zu operations exceeds the %d-issue width of %s",
                       ops.size(), active_isa_->issue_width, active_isa_->name.c_str()));
      return;
    }
    int branches = 0;
    for (const ParsedOp& op : ops) {
      if (op.info->is_branch) ++branches;
      if (op.info->serial_only && ops.size() > 1)
        error(line, op.info->name + " must be the only operation of its instruction");
      // Availability in the active ISA.
      bool found = false;
      for (const OpInfo* cand : active_isa_->ops) found |= (cand == op.info);
      if (!found)
        error(line, op.info->name + " is not available in ISA " + active_isa_->name);
    }
    if (branches > 1) error(line, "more than one branch in an instruction group");

    Group g;
    g.addr = offset(kText);
    g.ops = std::move(ops);
    g.line = line;
    g.isa = active_isa_;
    offset(kText) += static_cast<uint32_t>(g.ops.size()) * 4;
    data(kText).resize(offset(kText), 0);

    asm_lines_.entries.push_back({g.addr, 0, static_cast<uint32_t>(line)});
    if (src_line_pending_) {
      src_lines_.entries.push_back({g.addr, src_file_, src_line_});
      src_line_pending_ = false;
    }
    groups_.push_back(std::move(g));
  }

  /// Parses one slot (mnemonic + operands) and expands pseudos.  Returns an
  /// empty vector on error.
  std::vector<ParsedOp> parse_slot(std::string_view slot, int line) {
    size_t n = 0;
    while (n < slot.size() && !std::isspace(static_cast<unsigned char>(slot[n]))) ++n;
    const std::string mnemonic = upper(slot.substr(0, n));
    const std::string_view rest = trim(slot.substr(n));

    std::vector<std::string> operand_tokens;
    if (!rest.empty())
      for (std::string_view t : split(rest, ','))
        operand_tokens.emplace_back(trim(t));

    // Pseudo instructions first.
    if (auto pseudo = expand_pseudo(mnemonic, operand_tokens, line); pseudo)
      return std::move(*pseudo);

    const OpInfo* info = set_.find_op(mnemonic == "SWT" ? "SWITCHTARGET" : mnemonic);
    if (info == nullptr) {
      error(line, "unknown mnemonic '" + mnemonic + "'");
      return {};
    }
    ParsedOp op;
    op.info = info;
    if (!parse_operands(op, operand_tokens, line)) return {};
    return {std::move(op)};
  }

  bool parse_operands(ParsedOp& op, const std::vector<std::string>& tokens, int line) {
    const auto& pattern = op.info->syntax;
    if (tokens.size() != pattern.size()) {
      error(line, strf("%s expects %zu operand(s), got %zu", op.info->name.c_str(),
                       pattern.size(), tokens.size()));
      return false;
    }
    for (size_t i = 0; i < pattern.size(); ++i) {
      const std::string& pat = pattern[i];
      const std::string& tok = tokens[i];
      Operand operand;
      if (pat == "rd" || pat == "ra" || pat == "rb") {
        const auto reg = parse_register(tok);
        if (!reg) {
          error(line, "expected a register, got '" + tok + "'");
          return false;
        }
        operand.kind = Operand::Kind::Reg;
        operand.reg = *reg;
      } else if (pat == "imm") {
        if (!parse_imm_operand(op.info, tok, operand, line)) return false;
      } else if (pat == "imm(ra)") {
        if (!parse_mem_operand(tok, operand, line)) return false;
      } else {
        error(line, "internal: unsupported syntax pattern '" + pat + "'");
        return false;
      }
      op.operands.push_back(std::move(operand));
    }
    return true;
  }

  bool parse_imm_operand(const OpInfo* info, const std::string& tok, Operand& operand,
                         int line) {
    int64_t value = 0;
    if (parse_int(tok, value)) {
      operand.kind = Operand::Kind::Imm;
      operand.imm = value;
      return true;
    }
    // SWITCHTARGET accepts an ISA name.
    if (info->name == "SWITCHTARGET") {
      if (const isa::IsaInfo* isa = set_.find_isa(upper(tok)); isa != nullptr) {
        operand.kind = Operand::Kind::Imm;
        operand.imm = isa->id;
        return true;
      }
    }
    std::string sym;
    int64_t addend = 0;
    if (!parse_symbol_expr(tok, sym, addend)) {
      error(line, "malformed immediate '" + tok + "'");
      return false;
    }
    operand.kind = Operand::Kind::SymImm;
    operand.sym = std::move(sym);
    operand.imm = addend;
    symbols_[operand.sym].referenced = true;
    return true;
  }

  bool parse_mem_operand(const std::string& tok, Operand& operand, int line) {
    const size_t paren = tok.find('(');
    if (paren == std::string::npos || tok.back() != ')') {
      error(line, "expected displacement(register), got '" + tok + "'");
      return false;
    }
    const std::string disp = std::string(trim(std::string_view(tok).substr(0, paren)));
    const std::string base =
        std::string(trim(std::string_view(tok).substr(paren + 1, tok.size() - paren - 2)));
    int64_t value = 0;
    if (!disp.empty() && !parse_int(disp, value)) {
      error(line, "displacement must be an integer in '" + tok + "'");
      return false;
    }
    const auto reg = parse_register(base);
    if (!reg) {
      error(line, "expected a base register in '" + tok + "'");
      return false;
    }
    operand.kind = Operand::Kind::Mem;
    operand.reg = *reg;
    operand.imm = value;
    return true;
  }

  bool parse_symbol_expr(std::string_view s, std::string& sym, int64_t& addend) {
    s = trim(s);
    if (s.empty() || !is_ident_start(s[0])) return false;
    size_t n = 1;
    while (n < s.size() && is_ident_char(s[n])) ++n;
    sym = std::string(s.substr(0, n));
    addend = 0;
    std::string_view rest = trim(s.substr(n));
    if (rest.empty()) return true;
    if (rest[0] != '+' && rest[0] != '-') return false;
    int64_t v = 0;
    if (!parse_int(rest, v)) return false;
    addend = v;
    return true;
  }

  /// Expands pseudo mnemonics; returns nullopt if `mnemonic` is not a pseudo.
  std::optional<std::vector<ParsedOp>> expand_pseudo(
      const std::string& mnemonic, const std::vector<std::string>& tokens, int line) {
    auto make = [&](const char* name) {
      ParsedOp op;
      op.info = set_.find_op(name);
      check(op.info != nullptr, std::string("pseudo expansion uses unknown op ") + name);
      return op;
    };
    auto reg_op = [&](const std::string& tok) -> std::optional<Operand> {
      const auto r = parse_register(tok);
      if (!r) {
        error(line, "expected a register, got '" + tok + "'");
        return std::nullopt;
      }
      Operand o;
      o.kind = Operand::Kind::Reg;
      o.reg = *r;
      return o;
    };
    auto imm_op = [&](int64_t v) {
      Operand o;
      o.kind = Operand::Kind::Imm;
      o.imm = v;
      return o;
    };

    if (mnemonic == "LI") {
      if (tokens.size() != 2) {
        error(line, "li expects rd, imm32");
        return std::vector<ParsedOp>{};
      }
      const auto rd = reg_op(tokens[0]);
      int64_t value = 0;
      if (!rd) return std::vector<ParsedOp>{};
      if (!parse_int(tokens[1], value) || !(fits_signed(value, 32) || fits_unsigned(value, 32))) {
        error(line, "li immediate must be a 32-bit integer literal");
        return std::vector<ParsedOp>{};
      }
      std::vector<ParsedOp> out;
      if (fits_signed(value, 15)) {
        ParsedOp op = make("ADDI");
        Operand zero;
        zero.kind = Operand::Kind::Reg;
        zero.reg = 0;
        op.operands = {*rd, zero, imm_op(value)};
        out.push_back(std::move(op));
      } else {
        const uint32_t v = static_cast<uint32_t>(value);
        ParsedOp hi = make("LUI");
        hi.operands = {*rd, imm_op(v >> 16)};
        out.push_back(std::move(hi));
        if ((v & 0xFFFFu) != 0) {
          ParsedOp lo = make("ORLO");
          lo.operands = {*rd, imm_op(v & 0xFFFFu)};
          out.push_back(std::move(lo));
        }
      }
      return out;
    }
    if (mnemonic == "LA") {
      if (tokens.size() != 2) {
        error(line, "la expects rd, symbol");
        return std::vector<ParsedOp>{};
      }
      const auto rd = reg_op(tokens[0]);
      if (!rd) return std::vector<ParsedOp>{};
      std::string sym;
      int64_t addend = 0;
      if (!parse_symbol_expr(tokens[1], sym, addend)) {
        error(line, "la expects a symbol operand");
        return std::vector<ParsedOp>{};
      }
      symbols_[sym].referenced = true;
      Operand hi_imm;
      hi_imm.kind = Operand::Kind::SymImm;
      hi_imm.sym = sym;
      hi_imm.imm = addend;
      ParsedOp hi = make("LUI");
      hi.operands = {*rd, hi_imm};
      ParsedOp lo = make("ORLO");
      lo.operands = {*rd, hi_imm};
      std::vector<ParsedOp> out;
      out.push_back(std::move(hi));
      out.push_back(std::move(lo));
      return out;
    }
    if (mnemonic == "MV" || mnemonic == "NOT" || mnemonic == "NEG") {
      if (tokens.size() != 2) {
        error(line, lower(mnemonic) + " expects rd, ra");
        return std::vector<ParsedOp>{};
      }
      const auto rd = reg_op(tokens[0]);
      const auto ra = reg_op(tokens[1]);
      if (!rd || !ra) return std::vector<ParsedOp>{};
      Operand zero;
      zero.kind = Operand::Kind::Reg;
      zero.reg = 0;
      ParsedOp op = make(mnemonic == "MV" ? "ADD" : mnemonic == "NOT" ? "NOR" : "SUB");
      if (mnemonic == "NEG")
        op.operands = {*rd, zero, *ra}; // 0 - ra
      else if (mnemonic == "NOT")
        op.operands = {*rd, *ra, *ra}; // ~(ra | ra)
      else
        op.operands = {*rd, *ra, zero};
      std::vector<ParsedOp> out;
      out.push_back(std::move(op));
      return out;
    }
    if (mnemonic == "RET") {
      if (!tokens.empty()) {
        error(line, "ret takes no operands");
        return std::vector<ParsedOp>{};
      }
      ParsedOp op = make("JR");
      Operand ra;
      ra.kind = Operand::Kind::Reg;
      ra.reg = isa::abi::kRa;
      op.operands = {ra};
      std::vector<ParsedOp> out;
      out.push_back(std::move(op));
      return out;
    }
    if (mnemonic == "CALL" || mnemonic == "B") {
      if (tokens.size() != 1) {
        error(line, lower(mnemonic) + " expects a target symbol");
        return std::vector<ParsedOp>{};
      }
      ParsedOp op = make(mnemonic == "CALL" ? "JAL" : "J");
      Operand target;
      if (!parse_imm_operand(op.info, tokens[0], target, line))
        return std::vector<ParsedOp>{};
      op.operands = {target};
      std::vector<ParsedOp> out;
      out.push_back(std::move(op));
      return out;
    }
    if (mnemonic == "BEQZ" || mnemonic == "BNEZ") {
      if (tokens.size() != 2) {
        error(line, lower(mnemonic) + " expects ra, target");
        return std::vector<ParsedOp>{};
      }
      const auto ra = reg_op(tokens[0]);
      if (!ra) return std::vector<ParsedOp>{};
      ParsedOp op = make(mnemonic == "BEQZ" ? "BEQ" : "BNE");
      Operand zero;
      zero.kind = Operand::Kind::Reg;
      zero.reg = 0;
      Operand target;
      if (!parse_imm_operand(op.info, tokens[1], target, line))
        return std::vector<ParsedOp>{};
      op.operands = {*ra, zero, target};
      std::vector<ParsedOp> out;
      out.push_back(std::move(op));
      return out;
    }
    return std::nullopt;
  }

  // -- encoding (pass 2) ---------------------------------------------------------

  void encode_groups() {
    for (const Group& g : groups_) encode_group(g);
  }

  void encode_group(const Group& g) {
    const uint32_t group_end = g.addr + static_cast<uint32_t>(g.ops.size()) * 4;
    for (size_t slot = 0; slot < g.ops.size(); ++slot) {
      const ParsedOp& op = g.ops[slot];
      const uint32_t op_addr = g.addr + static_cast<uint32_t>(slot) * 4;
      uint32_t word = op.info->match_bits;
      if (slot + 1 == g.ops.size()) word |= (1u << set_.stop_bit());

      size_t operand_index = 0;
      for (const std::string& pat : op.info->syntax) {
        const Operand& operand = op.operands[operand_index++];
        if (pat == "rd")
          word = insert_field(word, op.info->f_rd, operand.reg);
        else if (pat == "ra")
          word = insert_field(word, op.info->f_ra, operand.reg);
        else if (pat == "rb")
          word = insert_field(word, op.info->f_rb, operand.reg);
        else if (pat == "imm")
          word = encode_imm(word, g, op, operand, op_addr, group_end);
        else if (pat == "imm(ra)") {
          word = insert_field(word, op.info->f_ra, operand.reg);
          if (!fits_signed(operand.imm, op.info->f_imm.hi - op.info->f_imm.lo + 1u))
            error(g.line, strf("displacement %lld out of range",
                               static_cast<long long>(operand.imm)));
          word = insert_field(word, op.info->f_imm, static_cast<uint32_t>(operand.imm));
        }
      }
      patch_word(op_addr, word);
    }
  }

  uint32_t encode_imm(uint32_t word, const Group& g, const ParsedOp& op,
                      const Operand& operand, uint32_t op_addr, uint32_t group_end) {
    const isa::OpField& f = op.info->f_imm;
    const unsigned width = f.hi - f.lo + 1u;
    if (operand.kind == Operand::Kind::Imm) {
      int64_t value = operand.imm;
      if (op.info->reloc == adl::RelocKind::Abs25) value = value / 4; // byte → word addr
      const bool ok = f.is_signed ? fits_signed(value, width) : fits_unsigned(value, width);
      if (!ok)
        error(g.line,
              strf("immediate %lld out of range for %s",
                   static_cast<long long>(operand.imm), op.info->name.c_str()));
      return insert_field(word, f, static_cast<uint32_t>(value));
    }

    // Symbolic immediate.
    const std::string& sym = operand.sym;
    const auto it = symbols_.find(sym);
    const bool local_text = it != symbols_.end() && it->second.defined &&
                            it->second.section == kText;
    switch (op.info->reloc) {
      case adl::RelocKind::PcRel: {
        if (local_text) {
          const int64_t delta =
              static_cast<int64_t>(it->second.value) + operand.imm - group_end;
          if ((delta & 3) != 0 || !fits_signed(delta / 4, width)) {
            error(g.line, "branch target out of range or misaligned");
            return word;
          }
          return insert_field(word, f, static_cast<uint32_t>(delta / 4));
        }
        relocs_.push_back({kText, op_addr, elf::R_KISA_PCREL15, sym,
                           static_cast<int32_t>(operand.imm) +
                               static_cast<int32_t>(op_addr) -
                               static_cast<int32_t>(group_end)});
        return word;
      }
      case adl::RelocKind::Abs25:
        relocs_.push_back({kText, op_addr, elf::R_KISA_ABS25, sym,
                           static_cast<int32_t>(operand.imm)});
        return word;
      case adl::RelocKind::None: {
        // Only LUI/ORLO accept symbolic immediates without a dedicated
        // relocation kind; they carry HI16/LO16 halves of the address.
        if (op.info->name == "LUI") {
          relocs_.push_back({kText, op_addr, elf::R_KISA_HI16, sym,
                             static_cast<int32_t>(operand.imm)});
          return word;
        }
        if (op.info->name == "ORLO") {
          relocs_.push_back({kText, op_addr, elf::R_KISA_LO16, sym,
                             static_cast<int32_t>(operand.imm)});
          return word;
        }
        error(g.line, op.info->name + " does not accept a symbolic immediate");
        return word;
      }
    }
    return word;
  }

  uint32_t insert_field(uint32_t word, const isa::OpField& f, uint32_t value) {
    return f.valid ? insert_bits(word, f.hi, f.lo, value) : word;
  }

  void patch_word(uint32_t text_offset, uint32_t word) {
    auto& text = data(kText);
    for (unsigned i = 0; i < 4; ++i)
      text[text_offset + i] = static_cast<uint8_t>(word >> (8 * i));
  }

  // -- object building -------------------------------------------------------------

  elf::ElfFile build_object() {
    elf::ElfFile obj;
    obj.type = elf::ET_REL;

    elf::Section text;
    text.name = ".text";
    text.flags = elf::SHF_ALLOC | elf::SHF_EXECINSTR;
    text.data = std::move(data_[kText]);
    obj.sections.push_back(std::move(text));

    elf::Section dat;
    dat.name = ".data";
    dat.flags = elf::SHF_ALLOC | elf::SHF_WRITE;
    dat.data = std::move(data_[kData]);
    obj.sections.push_back(std::move(dat));

    elf::Section bss;
    bss.name = ".bss";
    bss.type = elf::SHT_NOBITS;
    bss.flags = elf::SHF_ALLOC | elf::SHF_WRITE;
    bss.size = offsets_[kBss];
    obj.sections.push_back(std::move(bss));

    elf::Section dbg_asm;
    dbg_asm.name = ".kdbg.asm";
    dbg_asm.addralign = 1;
    dbg_asm.data = asm_lines_.serialize();
    obj.sections.push_back(std::move(dbg_asm));

    elf::Section dbg_src;
    dbg_src.name = ".kdbg.src";
    dbg_src.addralign = 1;
    dbg_src.data = src_lines_.serialize();
    obj.sections.push_back(std::move(dbg_src));

    // Symbols: defined first (locals then globals handled by the writer),
    // then undefined referenced symbols.
    std::map<std::string, uint32_t> symbol_index;
    for (const auto& [name, info] : symbols_) {
      if (!info.defined && !info.referenced) continue;
      elf::Symbol sym;
      sym.name = name;
      sym.value = info.value;
      sym.size = info.size;
      const uint8_t bind = (info.is_global || !info.defined) ? elf::STB_GLOBAL
                                                             : elf::STB_LOCAL;
      const uint8_t type = info.is_func ? elf::STT_FUNC : elf::STT_NOTYPE;
      sym.info = elf::st_info(bind, type);
      sym.shndx = info.defined ? static_cast<uint16_t>(info.section + 1) : elf::SHN_UNDEF;
      symbol_index[name] = static_cast<uint32_t>(obj.symbols.size());
      obj.symbols.push_back(std::move(sym));
    }

    std::vector<elf::Reloc> per_section[kNumSections];
    for (const PendingReloc& r : relocs_) {
      const auto it = symbol_index.find(r.symbol);
      check(it != symbol_index.end(), "assembler: reloc to untracked symbol");
      per_section[r.section].push_back({r.offset, r.type, it->second, r.addend});
    }
    for (int s = 0; s < kNumSections; ++s)
      if (!per_section[s].empty())
        obj.relocations.emplace_back(static_cast<uint16_t>(s + 1),
                                     std::move(per_section[s]));
    return obj;
  }

  std::string_view source_;
  const AsmOptions& options_;
  const isa::IsaSet& set_;
  DiagEngine& diags_;

  const isa::IsaInfo* active_isa_ = nullptr;
  int section_ = kText;
  uint32_t offsets_[kNumSections] = {0, 0, 0};
  std::vector<uint8_t> data_[kNumSections];

  std::map<std::string, SymbolInfo> symbols_;
  std::vector<PendingReloc> relocs_;
  std::vector<Group> groups_;

  std::string current_func_;
  uint32_t func_start_ = 0;

  elf::LineMap asm_lines_;
  elf::LineMap src_lines_;
  uint32_t src_file_ = 0;
  uint32_t src_line_ = 0;
  bool src_line_pending_ = false;
};

} // namespace

elf::ElfFile assemble(std::string_view source, const AsmOptions& options,
                      DiagEngine& diags) {
  return Assembler(source, options, diags).run();
}

elf::ElfFile assemble_or_throw(std::string_view source, const AsmOptions& options) {
  DiagEngine diags;
  elf::ElfFile obj = assemble(source, options, diags);
  diags.throw_if_errors();
  return obj;
}

} // namespace ksim::kasm
