// Auto-generated assembly stubs for the emulated C standard library
// (paper §V-E: "Each library function is made visible to the linker by
// providing an automatically generated assembly file containing a small
// function body for each library function that only executes the simulation
// operation and returns afterwards.") plus the program entry stub.
#pragma once

#include <string>
#include <vector>

namespace ksim::kasm {

/// Assembly source defining one global function per emulated library
/// function: `name: SIMOP <n>; ret`.  The stop-bit encoding makes these
/// bodies decodable from any active ISA, so one stub file serves every ISA
/// (the paper's motivation for native library emulation: no per-ISA libc
/// rebuild).  Functions named in `replaced` are omitted — the paper supports
/// replacing any native library function "with real implementations on the
/// simulated ISA" (§V-E); the replacement is then linked in like ordinary
/// user code and its cycles are counted by the cycle models.
std::string libc_stub_assembly(const std::vector<std::string>& replaced = {});

/// Assembly source for `_start`: sets up the stack pointer, calls `main`,
/// passes its return value to exit() and halts as a backstop.  `isa_name` is
/// the ISA `main` is compiled for (the entry code must match the initial ISA,
/// paper §V-D).
std::string start_stub_assembly(const std::string& isa_name = "RISC");

} // namespace ksim::kasm
