#include "kasm/linker.h"

#include <map>

#include "support/bits.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::kasm {
namespace {

struct SectionPlacement {
  uint32_t text = 0; ///< absolute base of this object's .text
  uint32_t data = 0;
  uint32_t bss = 0;

  uint32_t base_for(const std::string& name) const {
    if (name == ".text") return text;
    if (name == ".data") return data;
    if (name == ".bss") return bss;
    return 0;
  }
};

uint32_t align_up(uint32_t v, uint32_t a) { return (v + a - 1) & ~(a - 1); }

} // namespace

elf::ElfFile link(const std::vector<elf::ElfFile>& objects, const LinkOptions& options,
                  DiagEngine& diags) {
  SrcLoc link_loc{"<link>", 0, 0};
  auto error = [&](std::string msg) { diags.error(link_loc, std::move(msg)); };

  // -- layout -----------------------------------------------------------------
  std::vector<SectionPlacement> place(objects.size());
  uint32_t cursor = options.text_base;
  for (size_t i = 0; i < objects.size(); ++i) {
    const elf::Section* text = objects[i].find_section(".text");
    place[i].text = cursor;
    cursor = align_up(cursor + (text != nullptr ? text->effective_size() : 0), 4);
  }
  cursor = align_up(cursor, 16);
  for (size_t i = 0; i < objects.size(); ++i) {
    const elf::Section* data = objects[i].find_section(".data");
    place[i].data = cursor;
    cursor = align_up(cursor + (data != nullptr ? data->effective_size() : 0), 8);
  }
  cursor = align_up(cursor, 16);
  for (size_t i = 0; i < objects.size(); ++i) {
    const elf::Section* bss = objects[i].find_section(".bss");
    place[i].bss = cursor;
    cursor = align_up(cursor + (bss != nullptr ? bss->effective_size() : 0), 8);
  }
  const uint32_t bss_end = cursor;

  // -- global symbol resolution -------------------------------------------------
  struct Def {
    size_t object = 0;
    uint32_t addr = 0;
    uint32_t size = 0;
    uint8_t info = 0;
  };
  std::map<std::string, Def> globals;
  for (size_t i = 0; i < objects.size(); ++i) {
    for (const elf::Symbol& sym : objects[i].symbols) {
      if (sym.shndx == elf::SHN_UNDEF) continue;
      if (elf::st_bind(sym.info) != elf::STB_GLOBAL) continue;
      check(sym.shndx >= 1 && sym.shndx <= objects[i].sections.size(),
            "linker: symbol with invalid section index");
      const std::string& sec = objects[i].sections[sym.shndx - 1].name;
      const uint32_t addr = place[i].base_for(sec) + sym.value;
      const auto [it, inserted] = globals.emplace(sym.name, Def{i, addr, sym.size, sym.info});
      if (!inserted) error("duplicate definition of symbol '" + sym.name + "'");
      (void)it;
    }
  }

  // Absolute address of symbol `index` of object `obj`; false if undefined.
  auto resolve = [&](size_t obj, uint32_t index, uint32_t& out) {
    check(index < objects[obj].symbols.size(), "linker: relocation symbol out of range");
    const elf::Symbol& sym = objects[obj].symbols[index];
    if (sym.shndx != elf::SHN_UNDEF) {
      const std::string& sec = objects[obj].sections[sym.shndx - 1].name;
      out = place[obj].base_for(sec) + sym.value;
      return true;
    }
    const auto it = globals.find(sym.name);
    if (it == globals.end()) {
      error("undefined symbol '" + sym.name + "'");
      return false;
    }
    out = it->second.addr;
    return true;
  };

  // -- merge section payloads ----------------------------------------------------
  std::vector<uint8_t> text_data(place.empty() ? 0 : 0);
  std::vector<uint8_t> data_data;
  const uint32_t text_size =
      objects.empty() ? 0
                      : (place.back().text - options.text_base +
                         (objects.back().find_section(".text") != nullptr
                              ? objects.back().find_section(".text")->effective_size()
                              : 0));
  const uint32_t data_base = objects.empty() ? options.text_base : place.front().data;
  const uint32_t data_size =
      objects.empty() ? 0
                      : (place.back().data - data_base +
                         (objects.back().find_section(".data") != nullptr
                              ? objects.back().find_section(".data")->effective_size()
                              : 0));
  text_data.resize(align_up(text_size, 4), 0);
  data_data.resize(align_up(data_size, 4), 0);
  for (size_t i = 0; i < objects.size(); ++i) {
    if (const elf::Section* s = objects[i].find_section(".text"); s != nullptr)
      std::copy(s->data.begin(), s->data.end(),
                text_data.begin() + (place[i].text - options.text_base));
    if (const elf::Section* s = objects[i].find_section(".data"); s != nullptr)
      std::copy(s->data.begin(), s->data.end(), data_data.begin() + (place[i].data - data_base));
  }

  // Byte accessors over the merged image.
  auto image_at = [&](uint32_t addr) -> uint8_t* {
    if (addr >= options.text_base && addr - options.text_base < text_data.size())
      return &text_data[addr - options.text_base];
    if (addr >= data_base && addr - data_base < data_data.size())
      return &data_data[addr - data_base];
    return nullptr;
  };
  auto read32 = [&](uint32_t addr, uint32_t& v) {
    uint8_t* p = image_at(addr);
    if (p == nullptr || image_at(addr + 3) == nullptr) return false;
    v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
    return true;
  };
  auto write32 = [&](uint32_t addr, uint32_t v) {
    uint8_t* p = image_at(addr);
    if (p == nullptr || image_at(addr + 3) == nullptr) return false;
    for (int i = 0; i < 4; ++i) p[static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    return true;
  };

  // -- relocations ------------------------------------------------------------------
  for (size_t i = 0; i < objects.size(); ++i) {
    for (const auto& [target_index, relocs] : objects[i].relocations) {
      check(target_index >= 1 && target_index <= objects[i].sections.size(),
            "linker: relocation section out of range");
      const std::string& sec = objects[i].sections[target_index - 1].name;
      const uint32_t sec_base = place[i].base_for(sec);
      for (const elf::Reloc& r : relocs) {
        uint32_t s_addr = 0;
        if (!resolve(i, r.symbol, s_addr)) continue;
        const uint32_t p_addr = sec_base + r.offset;
        const int64_t value = static_cast<int64_t>(s_addr) + r.addend;
        uint32_t word = 0;
        switch (r.type) {
          case elf::R_KISA_ABS32:
            if (!write32(p_addr, static_cast<uint32_t>(value)))
              error("ABS32 relocation outside image at " + hex32(p_addr));
            break;
          case elf::R_KISA_HI16:
            if (!read32(p_addr, word) ||
                !write32(p_addr, insert_bits(word, 15, 0,
                                             static_cast<uint32_t>(value) >> 16)))
              error("HI16 relocation outside image at " + hex32(p_addr));
            break;
          case elf::R_KISA_LO16:
            if (!read32(p_addr, word) ||
                !write32(p_addr, insert_bits(word, 15, 0,
                                             static_cast<uint32_t>(value) & 0xFFFFu)))
              error("LO16 relocation outside image at " + hex32(p_addr));
            break;
          case elf::R_KISA_PCREL15: {
            const int64_t delta = value - static_cast<int64_t>(p_addr);
            if ((delta & 3) != 0 || !fits_signed(delta / 4, 15)) {
              error("PCREL15 relocation out of range at " + hex32(p_addr));
              break;
            }
            if (!read32(p_addr, word) ||
                !write32(p_addr, insert_bits(word, 14, 0,
                                             static_cast<uint32_t>(delta / 4))))
              error("PCREL15 relocation outside image at " + hex32(p_addr));
            break;
          }
          case elf::R_KISA_ABS25: {
            if ((value & 3) != 0 || !fits_unsigned(value / 4, 25)) {
              error("ABS25 relocation out of range at " + hex32(p_addr));
              break;
            }
            if (!read32(p_addr, word) ||
                !write32(p_addr, insert_bits(word, 24, 0,
                                             static_cast<uint32_t>(value / 4))))
              error("ABS25 relocation outside image at " + hex32(p_addr));
            break;
          }
          default:
            error("unknown relocation type " + std::to_string(r.type));
        }
      }
    }
  }

  // -- entry point --------------------------------------------------------------------
  uint32_t entry = options.text_base;
  const auto entry_it = globals.find(options.entry_symbol);
  if (entry_it == globals.end())
    error("entry symbol '" + options.entry_symbol + "' is not defined");
  else
    entry = entry_it->second.addr;

  // -- build the executable --------------------------------------------------------------
  elf::ElfFile exe;
  exe.type = elf::ET_EXEC;
  exe.entry = entry;
  exe.flags = static_cast<uint32_t>(options.entry_isa);

  elf::Section text;
  text.name = ".text";
  text.flags = elf::SHF_ALLOC | elf::SHF_EXECINSTR;
  text.addr = options.text_base;
  text.data = std::move(text_data);
  exe.sections.push_back(std::move(text));

  elf::Section dat;
  dat.name = ".data";
  dat.flags = elf::SHF_ALLOC | elf::SHF_WRITE;
  dat.addr = data_base;
  dat.data = std::move(data_data);
  exe.sections.push_back(std::move(dat));

  elf::Section bss;
  bss.name = ".bss";
  bss.type = elf::SHT_NOBITS;
  bss.flags = elf::SHF_ALLOC | elf::SHF_WRITE;
  bss.addr = objects.empty() ? bss_end : place.front().bss;
  bss.size = bss_end - bss.addr;
  exe.sections.push_back(std::move(bss));

  // All defined symbols with absolute values (functions keep their sizes so
  // the simulator can map addresses to functions, paper §V-C).
  for (size_t i = 0; i < objects.size(); ++i) {
    for (const elf::Symbol& sym : objects[i].symbols) {
      if (sym.shndx == elf::SHN_UNDEF || sym.name.empty()) continue;
      const std::string& sec = objects[i].sections[sym.shndx - 1].name;
      elf::Symbol out = sym;
      out.value = place[i].base_for(sec) + sym.value;
      out.shndx = exe.section_index(sec);
      exe.symbols.push_back(std::move(out));
    }
  }

  // Merge the debug line maps.
  elf::LineMap asm_map;
  elf::LineMap src_map;
  for (size_t i = 0; i < objects.size(); ++i) {
    auto merge = [&](const char* name, elf::LineMap& out) {
      const elf::Section* s = objects[i].find_section(name);
      if (s == nullptr || s->data.empty()) return;
      const elf::LineMap in = elf::LineMap::parse(s->data);
      for (const elf::LineEntry& e : in.entries) {
        const uint32_t file = out.intern_file(in.files.at(e.file));
        out.entries.push_back({e.addr + place[i].text, file, e.line});
      }
    };
    merge(".kdbg.asm", asm_map);
    merge(".kdbg.src", src_map);
  }
  elf::Section dbg_asm;
  dbg_asm.name = ".kdbg.asm";
  dbg_asm.addralign = 1;
  dbg_asm.data = asm_map.serialize();
  exe.sections.push_back(std::move(dbg_asm));
  elf::Section dbg_src;
  dbg_src.name = ".kdbg.src";
  dbg_src.addralign = 1;
  dbg_src.data = src_map.serialize();
  exe.sections.push_back(std::move(dbg_src));

  return exe;
}

elf::ElfFile link_or_throw(const std::vector<elf::ElfFile>& objects,
                           const LinkOptions& options) {
  DiagEngine diags;
  elf::ElfFile exe = link(objects, options, diags);
  diags.throw_if_errors();
  return exe;
}

} // namespace ksim::kasm
