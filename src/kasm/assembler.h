// Mixed-ISA assembler for K-ISA (paper §IV: "The assembler supports
// mixed-ISA assembly files. During assembling the ISA can be switched using a
// special assembly pseudo directive.").
//
// Directives:
//   .isa NAME            switch active ISA (RISC / VLIW2 / VLIW4 / VLIW6 / VLIW8)
//   .text / .data / .bss switch section
//   .global NAME         export symbol
//   .align N             align to N bytes (power of two)
//   .word/.half/.byte V[,V...]   data (V: integer, or symbol[+off] for .word)
//   .asciz "s" / .ascii "s"      string data
//   .space N             N zero bytes
//   .func NAME / .endfunc        function symbol with size (STT_FUNC)
//   .file "NAME"         C source file for subsequent .loc directives
//   .loc LINE            next instruction maps to source line LINE (paper V-C)
//
// Instructions: `MNEMONIC operands`, case-insensitive mnemonics; VLIW
// instructions pack several operations on one line separated by `||`
// (the assembler sets the stop bit on the last operation of each group):
//   add r4, r5, r6 || lw r7, 0(r2) || bne r4, r0, loop
//
// Pseudo instructions: li, la, mv, not, neg, ret, call, b, beqz, bnez.
// Multi-operation pseudos (li with a wide immediate, la, call) may not appear
// inside a `||` group.
#pragma once

#include <string_view>

#include "elf/elf.h"
#include "isa/optable.h"
#include "support/diag.h"

namespace ksim::kasm {

struct AsmOptions {
  std::string file_name = "<asm>";      ///< for diagnostics and .kdbg.asm
  const isa::IsaSet* isa_set = nullptr; ///< defaults to isa::kisa()
  std::string initial_isa = "RISC";     ///< active ISA at the top of the file
};

/// Assembles `source` into a relocatable ELF object.  Errors are reported via
/// `diags`; the returned object is only meaningful if !diags.has_errors().
elf::ElfFile assemble(std::string_view source, const AsmOptions& options,
                      DiagEngine& diags);

/// Convenience wrapper that throws ksim::Error on diagnostics.
elf::ElfFile assemble_or_throw(std::string_view source, const AsmOptions& options = {});

} // namespace ksim::kasm
