#include "kasm/disasm.h"

#include "support/strings.h"

namespace ksim::kasm {
namespace {

std::string lower(std::string s) {
  for (char& c : s)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return s;
}

} // namespace

std::string disassemble_op(const isa::IsaSet& set, const isa::IsaInfo& isa, uint32_t word) {
  const isa::OpInfo* info = set.detect(isa, word);
  if (info == nullptr) return strf(".word %s  # undecodable", hex32(word).c_str());
  std::string out = lower(info->name);
  bool first = true;
  for (const std::string& pat : info->syntax) {
    out += first ? " " : ", ";
    first = false;
    if (pat == "rd")
      out += "r" + std::to_string(info->f_rd.extract(word));
    else if (pat == "ra")
      out += "r" + std::to_string(info->f_ra.extract(word));
    else if (pat == "rb")
      out += "r" + std::to_string(info->f_rb.extract(word));
    else if (pat == "imm")
      out += std::to_string(static_cast<int32_t>(info->f_imm.extract(word)));
    else if (pat == "imm(ra)")
      out += strf("%d(r%u)", static_cast<int32_t>(info->f_imm.extract(word)),
                  info->f_ra.extract(word));
  }
  return out;
}

std::string disassemble_instr(const isa::IsaSet& set, const isa::IsaInfo& isa,
                              std::span<const uint32_t> words, size_t& consumed) {
  std::string out;
  consumed = 0;
  for (size_t i = 0; i < words.size() && consumed < static_cast<size_t>(isa.issue_width);
       ++i) {
    if (!out.empty()) out += " || ";
    out += disassemble_op(set, isa, words[i]);
    ++consumed;
    if (set.is_stop(words[i])) break;
  }
  return out;
}

} // namespace ksim::kasm
