#include "kasm/stubs.h"

#include <algorithm>

#include "isa/arch_state.h"
#include "isa/kisa.h"
#include "support/strings.h"

namespace ksim::kasm {

std::string libc_stub_assembly(const std::vector<std::string>& replaced) {
  std::string out = "# auto-generated C library stubs\n.isa RISC\n.text\n";
  for (int i = 0; i < isa::kNumLibcOps; ++i) {
    const std::string name(isa::libc_op_name(static_cast<isa::LibcOp>(i)));
    if (std::find(replaced.begin(), replaced.end(), name) != replaced.end()) continue;
    out += strf(".global %s\n.func %s\n  simop %d\n  ret\n.endfunc\n", name.c_str(),
                name.c_str(), i);
  }
  return out;
}

std::string start_stub_assembly(const std::string& isa_name) {
  std::string out = "# auto-generated program entry\n";
  out += ".isa " + isa_name + "\n.text\n.global _start\n.func _start\n";
  out += strf("  li sp, %u\n", isa::kStackTop);
  out += "  call main\n";
  // main's return value is already in r4, the first argument register.
  out += strf("  simop %d   # exit(r4)\n", static_cast<int>(isa::LibcOp::kExit));
  out += "  halt\n.endfunc\n";
  return out;
}

} // namespace ksim::kasm
