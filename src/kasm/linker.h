// Linker: combines relocatable K-ISA ELF objects into an executable
// (paper §IV: "all object files are linked together into the application
// binary", stored in standard ELF).
#pragma once

#include <vector>

#include "elf/elf.h"
#include "isa/arch_state.h"
#include "support/diag.h"

namespace ksim::kasm {

struct LinkOptions {
  std::string entry_symbol = "_start";
  int entry_isa = 0;                       ///< stored in e_flags (initial ISA)
  uint32_t text_base = isa::kCodeBase;     ///< load address of .text
};

/// Links `objects` into an executable.  Undefined/duplicate symbols and
/// relocation overflows are reported via `diags`.
elf::ElfFile link(const std::vector<elf::ElfFile>& objects, const LinkOptions& options,
                  DiagEngine& diags);

/// Convenience wrapper that throws ksim::Error on diagnostics.
elf::ElfFile link_or_throw(const std::vector<elf::ElfFile>& objects,
                           const LinkOptions& options = {});

} // namespace ksim::kasm
