// Value-range abstract interpretation over the per-function CFG: every
// general register (and every statically addressed stack slot) is tracked as
// a constant / interval / top lattice value, optionally relative to the
// function-entry stack pointer.  The whole-program passes consume the result
// to resolve indirect control transfers (jump tables, computed calls), to
// bound load/store effective addresses against the image + heap layout, and
// to derive per-function stack-frame sizes for the interprocedural
// stack-depth analysis (callgraph.h, summaries.h, checks.h).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/cfg.h"

namespace ksim::analysis {

/// One abstract value: ⊥, an interval [lo, hi] (possibly relative to the
/// stack pointer at function entry), or ⊤.  Constants are singleton
/// intervals.  Plain intervals hold the *unsigned* 32-bit value; sp-relative
/// offsets are signed (frames grow downwards).
struct ValueRange {
  enum class Kind : uint8_t { Bottom, Range, Top };

  Kind kind = Kind::Bottom;
  bool sp_rel = false; ///< value = (entry sp) + [lo, hi]
  int64_t lo = 0;
  int64_t hi = 0;

  static ValueRange bottom() { return {}; }
  static ValueRange top() { return {Kind::Top, false, 0, 0}; }
  static ValueRange constant(int64_t v) { return {Kind::Range, false, v, v}; }
  static ValueRange interval(int64_t lo, int64_t hi);
  static ValueRange sp_offset(int64_t lo, int64_t hi) {
    return {Kind::Range, true, lo, hi};
  }

  bool is_bottom() const { return kind == Kind::Bottom; }
  bool is_top() const { return kind == Kind::Top; }
  bool is_range() const { return kind == Kind::Range; }
  /// A plain (non-sp-relative) interval — the only form with known bounds.
  bool is_plain_range() const { return kind == Kind::Range && !sp_rel; }
  bool is_constant() const {
    return kind == Kind::Range && !sp_rel && lo == hi;
  }
  bool is_sp_constant() const {
    return kind == Kind::Range && sp_rel && lo == hi;
  }

  bool operator==(const ValueRange& o) const {
    if (kind != o.kind) return false;
    if (kind != Kind::Range) return true;
    return sp_rel == o.sp_rel && lo == o.lo && hi == o.hi;
  }

  /// Least upper bound.  Joining sp-relative with plain values yields ⊤.
  ValueRange join(const ValueRange& o) const;
  /// Classic interval widening of `this` (old state) against `o` (new):
  /// any growing bound jumps straight to the respective infinity (⊤ when
  /// both grow).  Guarantees termination of the fixed-point iteration.
  ValueRange widen(const ValueRange& o) const;

  std::string str() const; ///< diagnostic rendering ("42", "sp-8..sp-4", ...)
};

// Arithmetic on abstract values (wrap-free: any result that leaves the
// unsigned 32-bit domain degrades to ⊤ rather than modelling wraparound).
ValueRange vr_add(const ValueRange& a, const ValueRange& b);
ValueRange vr_sub(const ValueRange& a, const ValueRange& b);
ValueRange vr_add_const(const ValueRange& a, int64_t c);

/// Abstract machine state at one program point.
struct AbsState {
  std::array<ValueRange, 32> regs;
  /// Statically addressed stack slots, keyed by the signed byte offset from
  /// the entry sp of their *word-aligned* base.  Only 4-byte slots are
  /// tracked; sub-word stores invalidate the covering slot.  The analysis
  /// assumes stack slots are not aliased by computed pointers (the software
  /// ABI owns the frame); a store through an unknown sp-relative address
  /// drops the whole map.
  std::map<int64_t, ValueRange> slots;
  bool reachable = false;

  bool operator==(const AbsState& o) const {
    return reachable == o.reachable && regs == o.regs && slots == o.slots;
  }
};

/// The fixed-point result for one function: the abstract state at entry to
/// every basic block.  States inside a block are recovered by replaying the
/// (small) block with the same transfer function.
struct ValueAnalysis {
  const Cfg* cfg = nullptr;
  std::vector<AbsState> block_in; ///< indexed by block id
};

/// Runs the abstract interpretation over `cfg`.  Calls clobber registers per
/// the software ABI (value_range has no call-graph knowledge; the summary
/// layer refines nothing here — register *values* across calls are unknown
/// either way).
ValueAnalysis analyze_values(const Program& program, const Cfg& cfg);

/// Abstract value of register `reg` immediately before `instr` executes
/// (replays the enclosing block from its entry state).  ⊤ when `instr` is
/// not part of the analyzed CFG.
ValueRange value_before(const Program& program, const ValueAnalysis& va,
                        const StaticInstr& instr, unsigned reg);

/// Effective-address range of the load/store operation `op` of `instr`
/// (base register + immediate displacement).
ValueRange effective_address(const Program& program, const ValueAnalysis& va,
                             const StaticInstr& instr, const StaticOp& op);

} // namespace ksim::analysis
