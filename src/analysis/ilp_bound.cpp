#include "analysis/ilp_bound.h"

#include <algorithm>
#include <array>

#include "isa/reg_use.h"

namespace ksim::analysis {
namespace {

/// One block under the §VI-A scheduling rules (see cycle::IlpModel).
BlockIlp schedule_block(const BasicBlock& block, unsigned memory_delay) {
  BlockIlp out;
  out.addr = block.start;
  std::array<uint64_t, 32> reg_ready{};
  uint64_t last_branch_completion = 0;
  uint64_t last_store_start = 0;
  uint64_t max_completion = 0;

  for (const StaticInstr* instr : block.instrs) {
    // Two-phase within a bundle: all slots read pre-bundle completion times.
    uint64_t new_branch_completion = last_branch_completion;
    uint64_t new_store_start = last_store_start;
    struct Upd {
      isa::RegMask dst;
      uint64_t completion;
    };
    Upd updates[isa::kMaxSlots];
    for (int s = 0; s < instr->num_ops; ++s) {
      const StaticOp& op = instr->ops[s];
      const isa::OpInfo& info = *op.info;

      uint64_t start = last_branch_completion;
      isa::RegMask srcs = isa::op_src_mask(info, op.rd, op.ra, op.rb);
      while (srcs != 0) {
        const unsigned r = static_cast<unsigned>(__builtin_ctz(srcs));
        srcs &= srcs - 1;
        start = std::max(start, reg_ready[r]);
      }
      if (info.mem != adl::MemKind::None)
        start = std::max(start, last_store_start);

      const unsigned delay = info.uses_memory_model()
                                 ? memory_delay
                                 : static_cast<unsigned>(info.delay);
      const uint64_t completion = start + delay;
      if (info.is_branch)
        new_branch_completion = std::max(new_branch_completion, completion);
      if (info.is_store()) new_store_start = std::max(new_store_start, start);

      updates[s] = {isa::op_dst_mask(info, op.rd), completion};
      max_completion = std::max(max_completion, completion);
      ++out.ops;
    }
    for (int s = 0; s < instr->num_ops; ++s) {
      isa::RegMask dst = updates[s].dst;
      while (dst != 0) {
        const unsigned r = static_cast<unsigned>(__builtin_ctz(dst));
        dst &= dst - 1;
        reg_ready[r] = updates[s].completion;
      }
    }
    last_branch_completion = new_branch_completion;
    last_store_start = new_store_start;
  }
  out.critical_path = static_cast<uint32_t>(max_completion);
  return out;
}

} // namespace

FuncIlp compute_static_ilp(const Cfg& cfg, unsigned memory_delay) {
  FuncIlp out;
  if (cfg.func != nullptr) out.function = cfg.func->name;
  for (const BasicBlock& b : cfg.blocks) {
    BlockIlp bi = schedule_block(b, memory_delay);
    if (bi.ops == 0) continue;
    ++out.blocks;
    out.ops += bi.ops;
    out.critical_path += bi.critical_path;
    out.max_block_bound = std::max(out.max_block_bound, bi.bound());
    out.block_bounds.push_back(bi);
  }
  return out;
}

} // namespace ksim::analysis
