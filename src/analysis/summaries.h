// Interprocedural function summaries, computed bottom-up over the call-graph
// SCC condensation (callgraph.h).  A summary captures the caller-visible
// effect of one function — registers read/written across the call, stack
// frame size and worst-case chain depth, SIMOP use and the ISA(s) active at
// its return sites — and is cached per (address, entry ISA).  Call edges
// inside a recursion cycle fall back to the plain ABI clobber model, keeping
// the propagation context-insensitive and single-pass.
#pragma once

#include <map>

#include "analysis/callgraph.h"
#include "analysis/dataflow.h"

namespace ksim::analysis {

struct FuncSummary {
  uint32_t addr = 0;
  int entry_isa = 0;

  // Register effects, transitively including resolved callees.
  RegMask may_def = 0;  ///< possibly written between entry and return
  RegMask must_def = 0; ///< written on *every* path from entry to a return
  RegMask live_in = 0;  ///< possibly read before being written

  bool returns = false;   ///< at least one statically reached return path
  bool has_simop = false; ///< may execute SIMOP (self or transitive callee)

  /// Own stack-frame size in bytes (maximum sp decrement observed, including
  /// sp-relative stores below the adjusted sp).  Valid when frame_known.
  int64_t frame_bytes = 0;
  bool frame_known = false;

  /// Worst-case total stack depth from this function's entry (own frame plus
  /// the deepest resolved callee chain).  Valid when depth_known; unknowable
  /// for recursive functions, unresolved call sites and unknown frames.
  int64_t max_depth = 0;
  bool depth_known = false;

  /// Bit i set: ISA id i can be active when the function returns.  Empty for
  /// functions with no reached return.
  uint32_t exit_isa_mask = 0;
};

using FuncSummaries = std::map<uint32_t, FuncSummary>;

/// Computes summaries for every node of `cg`, visiting callees before
/// callers so each call site folds in its callee's finished summary.
FuncSummaries compute_summaries(const Program& program, const CallGraph& cg,
                                const FuncAnalyses& fa);

/// Interprocedural call effects for `instr` (a call site inside the function
/// owning `node`): the union/intersection over the site's resolved callees'
/// summaries, or the ABI fallback when any target is unresolved or inside
/// the caller's own recursion cycle.  Used by the summary-aware dataflow
/// overloads (dataflow.h).
CallEffects call_effects_at(const CallGraph& cg, const FuncSummaries& summaries,
                            int node, uint32_t site);

} // namespace ksim::analysis
