#include "analysis/summaries.h"

#include <algorithm>
#include <string_view>

#include "isa/kisa.h"

namespace ksim::analysis {
namespace {

constexpr RegMask kAllRegs = 0xFFFFFFFFu;

bool sem_is(const isa::OpInfo& info, std::string_view name) {
  return info.def != nullptr && info.def->semantic == name;
}

/// Folds the summaries of one call site's resolved callees into a combined
/// effect.  Returns false when any target must use the ABI fallback
/// (unresolved site, intra-cycle edge, callee without a summary).
bool fold_site_effects(const CallGraph& cg, const FuncSummaries& summaries,
                       int node, uint32_t site, CallEffects& out) {
  const CgNode& caller = cg.nodes[static_cast<size_t>(node)];
  bool any = false;
  RegMask must = kAllRegs;
  RegMask may = 0;
  for (int eid : caller.calls) {
    const CallEdge& e = cg.edges[static_cast<size_t>(eid)];
    if (e.site != site || e.tail) continue;
    if (e.callee < 0) return false;
    if (cg.nodes[static_cast<size_t>(e.callee)].scc == caller.scc)
      return false; // recursion cycle: summary not finished, use the ABI model
    const auto it =
        summaries.find(cg.nodes[static_cast<size_t>(e.callee)].func->addr);
    if (it == summaries.end()) return false;
    const FuncSummary& cs = it->second;
    any = true;
    out.use |= cs.live_in;
    // A non-returning callee makes everything after the call dead; leaving
    // `must` untouched treats every register as defined there, which keeps
    // downstream checks quiet on the unreachable tail.
    if (cs.returns) {
      must &= cs.must_def;
      may |= cs.may_def;
    }
  }
  if (!any) return false;
  // The return-value register stays modeled as defined even for callees
  // that never write it, matching the ABI model (void callees would
  // otherwise surface uninit-read noise at benign sites).
  out.def = must | (1u << isa::abi::kArg0);
  out.clobber = may & ~out.def;
  return true;
}

} // namespace

CallEffects call_effects_at(const CallGraph& cg, const FuncSummaries& summaries,
                            int node, uint32_t site) {
  CallEffects ce;
  if (fold_site_effects(cg, summaries, node, site, ce)) return ce;
  ce.use = abi_arg_mask() | (1u << isa::abi::kSp);
  ce.def = 1u << isa::abi::kArg0;
  ce.clobber = abi_call_clobber() & ~ce.def;
  return ce;
}

FuncSummaries compute_summaries(const Program& program, const CallGraph& cg,
                                const FuncAnalyses& fa) {
  FuncSummaries summaries;

  for (int ni : cg.bottom_up) {
    const CgNode& node = cg.nodes[static_cast<size_t>(ni)];
    const FuncRegion& func = *node.func;
    const auto fit = fa.find(func.addr);
    if (fit == fa.end()) continue;
    const FuncAnalysis& a = fit->second;

    FuncSummary s;
    s.addr = func.addr;
    s.entry_isa = func.entry_isa_id;

    // Per-site effect cache for the summary-aware dataflow.
    std::map<uint32_t, CallEffects> site_effects;
    const CallEffectsFn effects = [&](const StaticInstr& instr)
        -> const CallEffects* {
      auto [it, inserted] = site_effects.try_emplace(instr.addr);
      if (inserted)
        it->second = call_effects_at(cg, summaries, ni, instr.addr);
      return &it->second;
    };

    // Interprocedural must-defined: what the function itself guarantees to
    // write on every path to a return (entry state empty).
    const std::vector<DefinedState> defined =
        compute_defined(a.cfg, 0, effects);
    // Interprocedural liveness with nothing live at exit: the live-in of the
    // entry block is exactly "may read before write".
    const std::vector<LivenessState> live = compute_liveness(a.cfg, 0, effects);
    if (!a.cfg.blocks.empty()) s.live_in = live[0].live_in;
    // The call itself writes the link register before the callee reads it.
    s.live_in &= ~(1u << isa::abi::kRa);

    RegMask must_at_rets = kAllRegs;
    bool is_program_entry = func.contains(program.entry);
    bool frame_known = true;
    int64_t min_sp = 0;

    for (int id : a.cfg.rpo) {
      const BasicBlock& b = a.cfg.blocks[static_cast<size_t>(id)];
      // Blocks whose value-range entry state is infeasible (dead branch arm)
      // still contribute register effects, but not to the frame scan: their
      // abstract values are all ⊤.
      const bool live_state =
          a.values.block_in[static_cast<size_t>(id)].reachable;
      for (const StaticInstr* instr : b.instrs) {
        const InstrUseDef ud = instr_use_def(*instr, effects);
        s.may_def |= ud.def | ud.clobber;

        for (int sl = 0; sl < instr->num_ops; ++sl) {
          const StaticOp& op = instr->ops[sl];
          if (sem_is(*op.info, "simop")) s.has_simop = true;
          if (live_state && op.info->is_store()) {
            const ValueRange ea =
                effective_address(program, a.values, *instr, op);
            if (ea.is_range() && ea.sp_rel) min_sp = std::min(min_sp, ea.lo);
          }
        }
        if (live_state) {
          const ValueRange sp =
              value_before(program, a.values, *instr, isa::abi::kSp);
          if (sp.is_range() && sp.sp_rel) {
            min_sp = std::min(min_sp, sp.lo);
          } else if (!is_program_entry) {
            frame_known = false; // lost track of the stack pointer
          }
        }

        if (instr->is_ret) {
          s.returns = true;
          s.exit_isa_mask |= instr->inbound_isas;
          must_at_rets &= defined[static_cast<size_t>(id)].must_out;
        }
      }
    }
    s.must_def = s.returns ? (must_at_rets & s.may_def) : 0;
    s.frame_bytes = -min_sp;
    s.frame_known = frame_known && !is_program_entry;

    // Fold in transitive callee facts (resolved, out-of-cycle edges only).
    bool depth_known = s.frame_known && !node.recursive &&
                       !node.has_unresolved_call;
    int64_t deepest = 0;
    for (int eid : node.calls) {
      const CallEdge& e = cg.edges[static_cast<size_t>(eid)];
      if (e.callee < 0) {
        depth_known = false;
        continue;
      }
      const CgNode& callee = cg.nodes[static_cast<size_t>(e.callee)];
      if (callee.scc == node.scc) continue; // cycle: handled below
      const auto cit = summaries.find(callee.func->addr);
      if (cit == summaries.end()) {
        depth_known = false;
        continue;
      }
      if (cit->second.has_simop) s.has_simop = true;
      if (cit->second.depth_known)
        deepest = std::max(deepest, cit->second.max_depth);
      else
        depth_known = false;
    }
    s.max_depth = s.frame_bytes + deepest;
    s.depth_known = depth_known;

    summaries.emplace(func.addr, s);
  }

  // Second pass over recursion cycles: SIMOP use is a property of the whole
  // cycle, and members share it.
  std::map<int, bool> scc_simop;
  for (const auto& [addr, s] : summaries) {
    (void)addr;
    const int ni = cg.node_at(program, s.addr);
    if (ni >= 0 && cg.nodes[static_cast<size_t>(ni)].recursive)
      scc_simop[cg.nodes[static_cast<size_t>(ni)].scc] |= s.has_simop;
  }
  for (auto& [addr, s] : summaries) {
    (void)addr;
    const int ni = cg.node_at(program, s.addr);
    if (ni < 0) continue;
    const CgNode& node = cg.nodes[static_cast<size_t>(ni)];
    if (node.recursive && scc_simop[node.scc]) s.has_simop = true;
  }
  return summaries;
}

} // namespace ksim::analysis
