#include "analysis/cfg.h"

#include <algorithm>
#include <map>

namespace ksim::analysis {
namespace {

/// Instructions of `func`, in address order, skipping overlapping decodings
/// (an instruction starting inside the previous one can only arise from a
/// branch into the middle of a bundle; the checks report those separately).
std::vector<const StaticInstr*> func_instrs(const Program& program,
                                            const FuncRegion& func) {
  std::vector<const StaticInstr*> out;
  auto it = program.instrs.lower_bound(func.addr);
  for (; it != program.instrs.end() && it->first < func.end(); ++it)
    out.push_back(&it->second);
  return out;
}

} // namespace

const BasicBlock* Cfg::block_at(uint32_t addr) const {
  for (const BasicBlock& b : blocks)
    if (addr >= b.start && addr < b.end) return &b;
  return nullptr;
}

bool Cfg::dominates(int a, int b) const {
  while (b != -1) {
    if (a == b) return true;
    if (b == idom[static_cast<size_t>(b)]) break; // entry block self-loop
    b = idom[static_cast<size_t>(b)];
  }
  return false;
}

Cfg build_cfg(const Program& program, const FuncRegion& func) {
  Cfg cfg;
  cfg.func = &func;
  const std::vector<const StaticInstr*> instrs = func_instrs(program, func);
  if (instrs.empty()) return cfg;

  // Leaders: the function entry, every branch target inside the region, and
  // every instruction following a control transfer.
  std::map<uint32_t, int> leader; // address → future block id
  auto mark = [&leader](uint32_t addr) { leader.emplace(addr, -1); };
  mark(func.addr);
  mark(instrs.front()->addr);
  for (const StaticInstr* in : instrs) {
    if (in->has_target && func.contains(in->target) && !in->is_call)
      mark(in->target);
    const bool ends_block = in->is_cond_branch || in->is_ret || in->is_halt ||
                            in->has_indirect_target ||
                            (in->has_target && !in->is_call) || !in->has_fallthrough;
    if (ends_block) mark(in->end());
  }

  // Partition the instruction list into blocks.
  for (const StaticInstr* in : instrs) {
    const bool is_leader = leader.count(in->addr) != 0;
    if (is_leader || cfg.blocks.empty()) {
      BasicBlock b;
      b.id = static_cast<int>(cfg.blocks.size());
      b.start = in->addr;
      b.is_entry = in->addr == instrs.front()->addr;
      cfg.blocks.push_back(std::move(b));
      if (is_leader) leader[in->addr] = cfg.blocks.back().id;
    }
    cfg.blocks.back().instrs.push_back(in);
    cfg.blocks.back().end = in->end();
  }

  // Edges.
  for (BasicBlock& b : cfg.blocks) {
    const StaticInstr* last = b.instrs.back();
    auto link = [&](uint32_t addr) {
      auto it = leader.find(addr);
      if (it != leader.end() && it->second >= 0) {
        if (std::find(b.succs.begin(), b.succs.end(), it->second) == b.succs.end())
          b.succs.push_back(it->second);
        return true;
      }
      return false;
    };
    if (last->has_fallthrough) {
      if (last->end() >= func.end() || !link(last->end()))
        b.falls_off_end = last->end() >= func.end();
    }
    if (last->has_target && !last->is_call) {
      if (func.contains(last->target)) {
        link(last->target);
      } else {
        b.has_external_target = true; // tail jump into another function
      }
    }
  }
  for (const BasicBlock& b : cfg.blocks)
    for (int s : b.succs)
      cfg.blocks[static_cast<size_t>(s)].preds.push_back(b.id);

  compute_dominators(cfg);
  return cfg;
}

void compute_dominators(Cfg& cfg) {
  const size_t n = cfg.blocks.size();
  cfg.rpo.clear();
  cfg.idom.assign(n, -1);
  if (n == 0) return;

  // Depth-first postorder from the entry block (id 0).
  std::vector<int> state(n, 0); // 0 = unvisited, 1 = on stack, 2 = done
  std::vector<int> post;
  std::vector<std::pair<int, size_t>> stack;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [id, next] = stack.back();
    const BasicBlock& b = cfg.blocks[static_cast<size_t>(id)];
    if (next < b.succs.size()) {
      const int s = b.succs[next++];
      if (state[static_cast<size_t>(s)] == 0) {
        state[static_cast<size_t>(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[static_cast<size_t>(id)] = 2;
      post.push_back(id);
      stack.pop_back();
    }
  }
  cfg.rpo.assign(post.rbegin(), post.rend());

  std::vector<int> rpo_index(n, -1);
  for (size_t i = 0; i < cfg.rpo.size(); ++i)
    rpo_index[static_cast<size_t>(cfg.rpo[i])] = static_cast<int>(i);

  // Cooper/Harvey/Kennedy: iterate "idom[b] = intersect of processed preds"
  // to a fixed point over the reverse postorder.
  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_index[static_cast<size_t>(a)] > rpo_index[static_cast<size_t>(b)])
        a = cfg.idom[static_cast<size_t>(a)];
      while (rpo_index[static_cast<size_t>(b)] > rpo_index[static_cast<size_t>(a)])
        b = cfg.idom[static_cast<size_t>(b)];
    }
    return a;
  };
  cfg.idom[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int id : cfg.rpo) {
      if (id == 0) continue;
      int new_idom = -1;
      for (int p : cfg.blocks[static_cast<size_t>(id)].preds) {
        if (cfg.idom[static_cast<size_t>(p)] == -1) continue;
        new_idom = new_idom == -1 ? p : intersect(p, new_idom);
      }
      if (new_idom != -1 && cfg.idom[static_cast<size_t>(id)] != new_idom) {
        cfg.idom[static_cast<size_t>(id)] = new_idom;
        changed = true;
      }
    }
  }
}

} // namespace ksim::analysis
