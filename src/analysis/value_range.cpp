#include "analysis/value_range.h"

#include <algorithm>
#include <string_view>

#include "analysis/dataflow.h"
#include "isa/kisa.h"
#include "support/strings.h"

namespace ksim::analysis {
namespace {

/// Bounds beyond which a plain interval carries no information (the unsigned
/// 32-bit domain plus head-room so intermediate sums do not oscillate).
constexpr int64_t kLoLimit = -(int64_t(1) << 33);
constexpr int64_t kHiLimit = int64_t(1) << 33;
constexpr int64_t kU32Max = 0xFFFFFFFF;

/// Joins that still change a block's entry state after this many visits are
/// widened so the fixed point terminates on any loop structure.
constexpr int kWidenThreshold = 4;

bool sem_is(const isa::OpInfo& info, std::string_view name) {
  return info.def != nullptr && info.def->semantic == name;
}

ValueRange clamp(ValueRange v) {
  if (!v.is_range()) return v;
  if (v.lo > v.hi) return ValueRange::top(); // internal error guard
  if (v.lo <= kLoLimit || v.hi >= kHiLimit) return ValueRange::top();
  // Plain values are unsigned 32-bit: a range that cannot name a machine
  // value carries no information.
  if (!v.sp_rel && (v.hi < 0 || v.lo > kU32Max)) return ValueRange::top();
  return v;
}

} // namespace

ValueRange ValueRange::interval(int64_t lo, int64_t hi) {
  return clamp({Kind::Range, false, lo, hi});
}

ValueRange ValueRange::join(const ValueRange& o) const {
  if (is_bottom()) return o;
  if (o.is_bottom()) return *this;
  if (is_top() || o.is_top() || sp_rel != o.sp_rel) return top();
  return clamp({Kind::Range, sp_rel, std::min(lo, o.lo), std::max(hi, o.hi)});
}

ValueRange ValueRange::widen(const ValueRange& o) const {
  if (is_bottom()) return o;
  if (o.is_bottom()) return *this;
  if (is_top() || o.is_top() || sp_rel != o.sp_rel) return top();
  ValueRange w = *this;
  if (o.lo < lo) w.lo = kLoLimit;
  if (o.hi > hi) w.hi = kHiLimit;
  return clamp(w);
}

std::string ValueRange::str() const {
  switch (kind) {
    case Kind::Bottom: return "bottom";
    case Kind::Top: return "top";
    case Kind::Range: break;
  }
  const char* base = sp_rel ? "sp" : "";
  if (lo == hi) return strf("%s%+lld", base, static_cast<long long>(lo));
  return strf("%s[%+lld, %+lld]", base, static_cast<long long>(lo),
              static_cast<long long>(hi));
}

ValueRange vr_add(const ValueRange& a, const ValueRange& b) {
  if (a.is_bottom() || b.is_bottom()) return ValueRange::bottom();
  if (a.is_top() || b.is_top()) return ValueRange::top();
  if (a.sp_rel && b.sp_rel) return ValueRange::top(); // sp + sp: meaningless
  return clamp({ValueRange::Kind::Range, a.sp_rel || b.sp_rel, a.lo + b.lo,
                a.hi + b.hi});
}

ValueRange vr_sub(const ValueRange& a, const ValueRange& b) {
  if (a.is_bottom() || b.is_bottom()) return ValueRange::bottom();
  if (a.is_top() || b.is_top()) return ValueRange::top();
  // sp − sp cancels the symbolic base; sp − plain stays sp-relative;
  // plain − sp has no representation.
  if (!a.sp_rel && b.sp_rel) return ValueRange::top();
  return clamp({ValueRange::Kind::Range, a.sp_rel && !b.sp_rel, a.lo - b.hi,
                a.hi - b.lo});
}

ValueRange vr_add_const(const ValueRange& a, int64_t c) {
  return vr_add(a, ValueRange::constant(c));
}

// ---------------------------------------------------------------------------
// Transfer function

namespace {

struct Transfer {
  /// Per-function escape tracking: once a frame address leaks into memory,
  /// unknown stores and calls must drop the slot map (see value_range.h).
  bool frame_escaped = false;

  ValueRange op_result(const AbsState& st, const StaticOp& op) const {
    const isa::OpInfo& info = *op.info;
    const ValueRange a = st.regs[op.ra & 31u];
    const ValueRange b = st.regs[op.rb & 31u];
    const ValueRange d = st.regs[op.rd & 31u];
    const int64_t imm = op.imm;

    if (sem_is(info, "add")) return vr_add(a, b);
    if (sem_is(info, "sub")) return vr_sub(a, b);
    if (sem_is(info, "addi")) return vr_add_const(a, imm);
    if (sem_is(info, "lui"))
      return ValueRange::constant((static_cast<uint32_t>(imm) << 16) & kU32Max);
    if (sem_is(info, "orlo")) {
      if (d.is_constant() && (d.lo & 0xFFFF) == 0)
        return ValueRange::constant(d.lo | (imm & 0xFFFF));
      return ValueRange::top();
    }
    if (sem_is(info, "andi")) {
      if (imm >= 0) {
        int64_t hi = imm;
        if (a.is_plain_range() && a.lo >= 0) hi = std::min(hi, a.hi);
        return ValueRange::interval(0, hi);
      }
      return ValueRange::top();
    }
    if (sem_is(info, "ori")) {
      if (a.is_constant()) {
        const uint32_t v = static_cast<uint32_t>(a.lo);
        return ValueRange::constant(v | static_cast<uint32_t>(imm));
      }
      return ValueRange::top();
    }
    if (sem_is(info, "xori")) {
      if (a.is_constant()) {
        const uint32_t v = static_cast<uint32_t>(a.lo);
        return ValueRange::constant(v ^ static_cast<uint32_t>(imm));
      }
      return ValueRange::top();
    }
    if (sem_is(info, "slli")) {
      const unsigned s = static_cast<unsigned>(imm) & 31u;
      if (a.is_plain_range() && a.lo >= 0 && a.hi <= (kHiLimit >> s))
        return ValueRange::interval(a.lo << s, a.hi << s);
      return ValueRange::top();
    }
    if (sem_is(info, "srli")) {
      const unsigned s = static_cast<unsigned>(imm) & 31u;
      if (a.is_plain_range() && a.lo >= 0)
        return ValueRange::interval(a.lo >> s, a.hi >> s);
      return ValueRange::top();
    }
    if (sem_is(info, "mul")) {
      if (a.is_constant() && b.is_constant())
        return ValueRange::constant(
            static_cast<int64_t>(static_cast<uint32_t>(
                static_cast<uint32_t>(a.lo) * static_cast<uint32_t>(b.lo))));
      return ValueRange::top();
    }
    // Comparison results are 0/1 regardless of the inputs.
    if (sem_is(info, "slt") || sem_is(info, "sltu") || sem_is(info, "seq") ||
        sem_is(info, "sne") || sem_is(info, "sle") || sem_is(info, "sleu") ||
        sem_is(info, "slti") || sem_is(info, "sltiu"))
      return ValueRange::interval(0, 1);
    // Narrow zero-extending loads are bounded by their width even when the
    // address is unknown.
    if (sem_is(info, "lbu")) return ValueRange::interval(0, 0xFF);
    if (sem_is(info, "lhu")) return ValueRange::interval(0, 0xFFFF);
    return ValueRange::top();
  }

  /// Applies one whole instruction (bundle): all slots read the pre-state
  /// (§V-B parallel-read semantics), then the writes commit.
  void apply(AbsState& st, const StaticInstr& instr) {
    // Evaluate results and load/store addresses against the pre-state.
    std::array<ValueRange, isa::kMaxSlots> results;
    for (int s = 0; s < instr.num_ops; ++s)
      results[static_cast<size_t>(s)] = op_result(st, instr.ops[s]);

    bool clear_slots = false;
    for (int s = 0; s < instr.num_ops; ++s) {
      const StaticOp& op = instr.ops[s];
      const isa::OpInfo& info = *op.info;
      if (info.is_store()) {
        const ValueRange ea = vr_add_const(st.regs[op.ra & 31u], op.imm);
        const ValueRange value = st.regs[op.rd & 31u];
        if (value.sp_rel) frame_escaped = true; // frame address leaks to memory
        if (ea.is_sp_constant()) {
          if (sem_is(info, "sw")) {
            st.slots[ea.lo] = value;
          } else {
            // Sub-word store: invalidate any covering word slot.
            for (int64_t k = ea.lo - 3; k <= ea.lo; ++k) st.slots.erase(k);
          }
        } else if (ea.sp_rel || (frame_escaped && !ea.is_plain_range())) {
          clear_slots = true; // unknown frame offset (or escaped frame)
        }
      } else if (info.is_load() && sem_is(info, "lw")) {
        const ValueRange ea = vr_add_const(st.regs[op.ra & 31u], op.imm);
        if (ea.is_sp_constant()) {
          auto it = st.slots.find(ea.lo);
          if (it != st.slots.end()) results[static_cast<size_t>(s)] = it->second;
        }
      }
    }
    if (clear_slots) st.slots.clear();

    // Commit register writes (later slots win on intra-bundle WAW; the
    // hazard checker reports those separately).
    for (int s = 0; s < instr.num_ops; ++s) {
      const StaticOp& op = instr.ops[s];
      isa::RegMask dst = isa::op_dst_mask(*op.info, op.rd);
      // Modelled result goes to the explicit destination; any other
      // implicitly written register becomes unknown.
      if (op.info->rd_is_dst) {
        st.regs[op.rd & 31u] = results[static_cast<size_t>(s)];
        dst &= ~(1u << (op.rd & 31u));
      }
      while (dst != 0) {
        const unsigned r = static_cast<unsigned>(__builtin_ctz(dst));
        dst &= dst - 1;
        st.regs[r] = ValueRange::top();
      }
    }
    st.regs[0] = ValueRange::constant(0);

    if (instr.is_call) {
      // If a frame address is passed to the callee it may write the frame.
      bool arg_escapes = false;
      for (unsigned r = isa::abi::kArg0;
           r < isa::abi::kArg0 + isa::abi::kNumArgRegs; ++r)
        if (st.regs[r].sp_rel && st.regs[r].is_range()) arg_escapes = true;
      if (arg_escapes || frame_escaped) st.slots.clear();
      // Register *values* across a call are unknown even with precise
      // clobber summaries; only preservation (callee-saved + sp) survives.
      isa::RegMask clobber = abi_call_clobber() |
                             (1u << isa::abi::kArg0) | (1u << isa::abi::kRa);
      while (clobber != 0) {
        const unsigned r = static_cast<unsigned>(__builtin_ctz(clobber));
        clobber &= clobber - 1;
        st.regs[r] = ValueRange::top();
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Conditional-branch refinement on CFG edges

/// Interprets a plain range as signed 32-bit if it does not straddle the
/// sign boundary; returns false when refinement must be skipped.
bool signed_view(const ValueRange& v, int64_t& lo, int64_t& hi) {
  if (!v.is_plain_range()) return false;
  if (v.hi < (int64_t(1) << 31)) {
    lo = v.lo;
    hi = v.hi;
    return true;
  }
  if (v.lo >= (int64_t(1) << 31)) {
    lo = v.lo - (int64_t(1) << 32);
    hi = v.hi - (int64_t(1) << 32);
    return true;
  }
  return false;
}

void set_bounds(ValueRange& v, int64_t lo, int64_t hi, bool& infeasible) {
  if (lo > hi) {
    infeasible = true;
    return;
  }
  if (lo < 0) lo += int64_t(1) << 32; // back to the unsigned view
  if (hi < 0) hi += int64_t(1) << 32;
  if (lo > hi) return; // mixed wrap: give up rather than mis-state
  v = ValueRange::interval(lo, hi);
}

/// Refines `st` along the taken (or fallthrough) edge of the conditional
/// branch ending `instr`.  Marks the state unreachable when the edge is
/// statically infeasible.
void refine_edge(AbsState& st, const StaticInstr& instr, bool taken) {
  const StaticOp* br = nullptr;
  for (int s = 0; s < instr.num_ops; ++s)
    if (instr.ops[s].info->is_branch) br = &instr.ops[s];
  if (br == nullptr || br->info->def == nullptr) return;
  const std::string& sem = br->info->def->semantic;

  ValueRange& a = st.regs[br->ra & 31u];
  ValueRange& b = st.regs[br->rb & 31u];
  bool infeasible = false;

  if (sem == "beq" || sem == "bne") {
    const bool equal = (sem == "beq") == taken;
    if (equal && a.is_plain_range() && b.is_plain_range()) {
      const int64_t lo = std::max(a.lo, b.lo), hi = std::min(a.hi, b.hi);
      if (lo > hi) {
        st.reachable = false;
        return;
      }
      a = b = ValueRange::interval(lo, hi);
    } else if (!equal && a.is_constant() && b.is_constant() && a.lo == b.lo) {
      st.reachable = false;
    }
    return;
  }

  const bool is_unsigned = sem == "bltu" || sem == "bgeu";
  const bool is_signed = sem == "blt" || sem == "bge";
  if (!is_unsigned && !is_signed) return;
  // Normalize to "a < b holds" on this edge.
  const bool less = (sem == "bltu" || sem == "blt") == taken;

  int64_t alo = 0, ahi = 0, blo = 0, bhi = 0;
  if (is_unsigned) {
    if (!a.is_plain_range() || !b.is_plain_range()) return;
    alo = a.lo, ahi = a.hi, blo = b.lo, bhi = b.hi;
  } else if (!signed_view(a, alo, ahi) || !signed_view(b, blo, bhi)) {
    return;
  }
  if (less) {
    set_bounds(a, alo, std::min(ahi, bhi - 1), infeasible);
    set_bounds(b, std::max(blo, alo + 1), bhi, infeasible);
  } else { // a >= b
    set_bounds(a, std::max(alo, blo), ahi, infeasible);
    set_bounds(b, blo, std::min(bhi, ahi), infeasible);
  }
  if (infeasible) st.reachable = false;
}

AbsState join_states(const AbsState& a, const AbsState& b) {
  if (!a.reachable) return b;
  if (!b.reachable) return a;
  AbsState out;
  out.reachable = true;
  for (size_t r = 0; r < out.regs.size(); ++r)
    out.regs[r] = a.regs[r].join(b.regs[r]);
  for (const auto& [off, v] : a.slots) {
    auto it = b.slots.find(off);
    if (it == b.slots.end()) continue;
    const ValueRange j = v.join(it->second);
    if (!j.is_top()) out.slots.emplace(off, j);
  }
  return out;
}

AbsState entry_state(const Program& program, const FuncRegion& func) {
  AbsState st;
  st.reachable = true;
  for (ValueRange& v : st.regs) v = ValueRange::top();
  st.regs[0] = ValueRange::constant(0);
  if (!func.contains(program.entry))
    st.regs[isa::abi::kSp] = ValueRange::sp_offset(0, 0);
  return st;
}

} // namespace

ValueAnalysis analyze_values(const Program& program, const Cfg& cfg) {
  ValueAnalysis va;
  va.cfg = &cfg;
  const size_t n = cfg.blocks.size();
  va.block_in.assign(n, AbsState{});
  if (n == 0) return va;
  va.block_in[0] = entry_state(program, *cfg.func);

  Transfer transfer;
  std::vector<int> visits(n, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int id : cfg.rpo) {
      const BasicBlock& b = cfg.blocks[static_cast<size_t>(id)];
      AbsState in;
      if (id == 0) in = va.block_in[0];
      for (int p : b.preds) {
        const BasicBlock& pred = cfg.blocks[static_cast<size_t>(p)];
        AbsState out = va.block_in[static_cast<size_t>(p)];
        if (!out.reachable || pred.instrs.empty()) continue;
        for (const StaticInstr* instr : pred.instrs) transfer.apply(out, *instr);
        const StaticInstr* last = pred.instrs.back();
        if (last->is_cond_branch && last->has_target &&
            last->target != last->end()) {
          const bool is_taken_edge = b.start == last->target;
          const bool is_fall_edge = b.start == last->end();
          if (is_taken_edge != is_fall_edge)
            refine_edge(out, *last, is_taken_edge);
        }
        in = join_states(in, out);
      }
      if (!in.reachable && id != 0) continue;
      AbsState& cur = va.block_in[static_cast<size_t>(id)];
      if (in == cur) continue;
      if (++visits[static_cast<size_t>(id)] > kWidenThreshold) {
        AbsState widened = cur;
        widened.reachable = in.reachable;
        for (size_t r = 0; r < in.regs.size(); ++r)
          widened.regs[r] = cur.regs[r].widen(in.regs[r]);
        std::erase_if(widened.slots, [&](const auto& kv) {
          return in.slots.find(kv.first) == in.slots.end();
        });
        for (auto& [off, v] : widened.slots)
          v = v.widen(in.slots.at(off));
        if (widened == cur) continue; // widening converged
        cur = std::move(widened);
      } else {
        cur = std::move(in);
      }
      changed = true;
    }
  }
  return va;
}

ValueRange value_before(const Program& program, const ValueAnalysis& va,
                        const StaticInstr& instr, unsigned reg) {
  (void)program;
  if (va.cfg == nullptr) return ValueRange::top();
  const BasicBlock* b = va.cfg->block_at(instr.addr);
  if (b == nullptr) return ValueRange::top();
  AbsState st = va.block_in[static_cast<size_t>(b->id)];
  if (!st.reachable) return ValueRange::top();
  Transfer transfer;
  for (const StaticInstr* in : b->instrs) {
    if (in->addr == instr.addr) return st.regs[reg & 31u];
    transfer.apply(st, *in);
  }
  return ValueRange::top();
}

ValueRange effective_address(const Program& program, const ValueAnalysis& va,
                             const StaticInstr& instr, const StaticOp& op) {
  return vr_add_const(value_before(program, va, instr, op.ra & 31u), op.imm);
}

} // namespace ksim::analysis
