#include "analysis/translatability.h"

#include <algorithm>
#include <string_view>

#include "jit/jit.h"

namespace ksim::analysis {
namespace {

bool sem_is(const isa::OpInfo& info, std::string_view name) {
  return info.def != nullptr && info.def->semantic == name;
}

/// True when the bounded effective-address range may touch memory outside
/// the simulated RAM.  ⊤ and sp-relative ranges are not judged here.
bool may_trap(const ValueRange& ea, unsigned access_bytes, uint32_t ram_size) {
  if (!ea.is_plain_range()) return false;
  return ea.lo < 0 || ea.hi + access_bytes > ram_size;
}

unsigned access_size(const isa::OpInfo& info) {
  if (sem_is(info, "lw") || sem_is(info, "sw")) return 4;
  if (sem_is(info, "lh") || sem_is(info, "lhu") || sem_is(info, "sh")) return 2;
  return 1;
}

} // namespace

std::vector<std::string> reason_names(unsigned reasons) {
  std::vector<std::string> names;
  if ((reasons & kJitSimop) != 0) names.emplace_back("simop");
  if ((reasons & kJitTrapRisk) != 0) names.emplace_back("trap-risk");
  if ((reasons & kJitSelfModifying) != 0) names.emplace_back("self-modifying");
  if ((reasons & kJitUnresolvedIndirect) != 0)
    names.emplace_back("unresolved-indirect");
  return names;
}

TranslatabilityReport classify_translatability(const elf::ElfFile& exe,
                                               const Program& program,
                                               const FuncAnalyses& fa,
                                               uint32_t ram_size) {
  TranslatabilityReport report;
  for (const FuncRegion& func : program.functions) {
    const auto it = fa.find(func.addr);
    if (it == fa.end()) continue;
    const FuncAnalysis& a = it->second;

    FuncTranslatability ft;
    ft.addr = func.addr;
    ft.name = func.name;
    ft.entry_isa = func.entry_isa_id;
    ft.total_blocks = static_cast<int>(a.cfg.blocks.size());

    for (const BasicBlock& b : a.cfg.blocks) {
      BlockTranslatability bt;
      bt.start = b.start;
      bt.end = b.end;

      for (const StaticInstr* instr : b.instrs) {
        for (int s = 0; s < instr->num_ops; ++s) {
          const StaticOp& op = instr->ops[s];
          const isa::OpInfo& info = *op.info;
          // Fast-path SIMOPs (malloc/free/rand/srand) are translated inline
          // (jit::simop_fast_path); only calls the JIT cannot reproduce —
          // I/O, exit, host-buffer string ops — still veto the block.
          if (sem_is(info, "simop") &&
              !jit::simop_fast_path(static_cast<int>(op.imm)))
            bt.reasons |= kJitSimop;
          if (info.is_load() || info.is_store()) {
            const ValueRange ea =
                effective_address(program, a.values, *instr, op);
            if (may_trap(ea, access_size(info), ram_size))
              bt.reasons |= kJitTrapRisk;
            // A store whose bounded range intersects the text section can
            // rewrite code a translation already captured.
            if (info.is_store() && ea.is_plain_range() &&
                ea.hi + access_size(info) > program.text_addr &&
                ea.lo < program.text_end)
              bt.reasons |= kJitSelfModifying;
          }
        }
        if (instr->has_indirect_target && !instr->is_ret) {
          const IndirectResolution r =
              resolve_indirect(exe, program, a, *instr);
          if (!r.resolved || r.table_writable)
            bt.reasons |= kJitUnresolvedIndirect;
        }
      }
      ft.reasons |= bt.reasons;
      if (bt.jit_safe()) ++ft.safe_blocks;
      ft.blocks.push_back(bt);
    }
    std::sort(ft.blocks.begin(), ft.blocks.end(),
              [](const BlockTranslatability& x, const BlockTranslatability& y) {
                return x.start < y.start;
              });
    if (ft.jit_safe()) ++report.safe_functions;
    ++report.total_functions;
    report.functions.push_back(std::move(ft));
  }
  std::sort(report.functions.begin(), report.functions.end(),
            [](const FuncTranslatability& x, const FuncTranslatability& y) {
              return x.addr < y.addr;
            });
  return report;
}

} // namespace ksim::analysis
