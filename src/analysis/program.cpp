#include "analysis/program.h"

#include <algorithm>
#include <deque>

#include "isa/reg_use.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::analysis {
namespace {

/// Semantic names with special static control-flow meaning.  Classification
/// is otherwise fully table-driven (is_branch/is_call/is_ret, reloc kind);
/// only behaviours the ADL cannot express are keyed on the semantics name.
bool sem_is(const isa::OpInfo& info, std::string_view name) {
  return info.def != nullptr && info.def->semantic == name;
}

/// Branch comparisons that are statically decided when both source operands
/// name the same register (the assembler's `b` pseudo is BEQ r0, r0).
enum class SameRegBranch { Unknown, AlwaysTaken, NeverTaken };

SameRegBranch same_reg_branch(const isa::OpInfo& info) {
  if (info.def == nullptr) return SameRegBranch::Unknown;
  const std::string& s = info.def->semantic;
  if (s == "beq" || s == "bge" || s == "bgeu") return SameRegBranch::AlwaysTaken;
  if (s == "bne" || s == "blt" || s == "bltu") return SameRegBranch::NeverTaken;
  return SameRegBranch::Unknown;
}

struct WorkItem {
  uint32_t addr = 0;
  int isa_id = 0;
  uint32_t from_addr = 0;
  bool speculative = false;
};

class Decoder {
public:
  Decoder(const elf::ElfFile& exe, const isa::IsaSet& set, Program& out)
      : exe_(exe), set_(set), out_(out) {}

  void run() {
    const elf::Section* text = exe_.find_section(".text");
    check(text != nullptr && (text->flags & elf::SHF_EXECINSTR) != 0,
          "lint: executable has no .text section");
    check(exe_.type == elf::ET_EXEC, "lint: input is not a linked executable");
    text_ = text;
    out_.set = &set_;
    out_.entry = exe_.entry;
    out_.entry_isa = static_cast<int>(exe_.flags);
    out_.text_addr = text->addr;
    out_.text_end = text->addr + static_cast<uint32_t>(text->data.size());
    check(set_.find_isa(out_.entry_isa) != nullptr,
          strf("lint: executable names unknown entry ISA %d", out_.entry_isa));

    collect_functions();
    traverse({out_.entry, out_.entry_isa, out_.entry, false});

    // Seed functions the entry traversal never reached (e.g. unreferenced
    // library stubs) so their bodies are analyzed too.  Without a caller the
    // inbound ISA is unknown; the program's entry ISA is the best guess and
    // findings from these paths are marked speculative.
    for (FuncRegion& f : out_.functions) {
      if (out_.instrs.count(f.addr) != 0) continue;
      f.speculative = true;
      traverse({f.addr, out_.entry_isa, f.addr, true});
    }
  }

private:
  void collect_functions() {
    for (const elf::Symbol& sym : exe_.symbols) {
      if (elf::st_type(sym.info) != elf::STT_FUNC || sym.size == 0) continue;
      FuncRegion f;
      f.name = sym.name;
      f.addr = sym.value;
      f.size = sym.size;
      out_.functions.push_back(std::move(f));
    }
    std::sort(out_.functions.begin(), out_.functions.end(),
              [](const FuncRegion& a, const FuncRegion& b) { return a.addr < b.addr; });
  }

  FuncRegion* region_at(uint32_t addr) {
    auto it = std::upper_bound(
        out_.functions.begin(), out_.functions.end(), addr,
        [](uint32_t a, const FuncRegion& f) { return a < f.addr; });
    if (it == out_.functions.begin()) return nullptr;
    --it;
    return it->contains(addr) ? &*it : nullptr;
  }

  bool fetch32(uint32_t addr, uint32_t& word) const {
    if (addr < out_.text_addr || addr + 4 > out_.text_end || (addr & 3u) != 0)
      return false;
    const size_t off = addr - out_.text_addr;
    word = 0;
    for (int b = 3; b >= 0; --b)
      word = (word << 8) | text_->data[off + static_cast<size_t>(b)];
    return true;
  }

  void issue(DecodeIssueKind kind, const WorkItem& item, int other_isa,
             std::string detail) {
    DecodeIssue di;
    di.kind = kind;
    di.addr = item.addr;
    di.from_addr = item.from_addr;
    di.isa_id = item.isa_id;
    di.other_isa_id = other_isa;
    di.speculative = item.speculative;
    di.detail = std::move(detail);
    out_.issues.push_back(std::move(di));
  }

  /// Decodes the instruction at `item.addr` under `item.isa_id`.
  /// Returns false (after recording an issue) when the path must stop.
  bool decode_one(const WorkItem& item, const isa::IsaInfo& isa, StaticInstr& out) {
    out = StaticInstr{};
    out.addr = item.addr;
    out.isa_id = static_cast<int16_t>(isa.id);
    out.isa_after = isa.id;
    for (int slot = 0; slot < isa.issue_width; ++slot) {
      const uint32_t op_addr = item.addr + static_cast<uint32_t>(slot) * 4;
      uint32_t word = 0;
      if (!fetch32(op_addr, word)) {
        issue(DecodeIssueKind::BadAddress, item, 0,
              strf("operation fetch at %s leaves the text section",
                   hex32(op_addr).c_str()));
        return false;
      }
      const isa::OpInfo* info = set_.detect(isa, word);
      if (info == nullptr) {
        issue(DecodeIssueKind::Undecodable, item, 0,
              strf("word %s at %s does not decode in ISA %s",
                   hex32(word).c_str(), hex32(op_addr).c_str(), isa.name.c_str()));
        return false;
      }
      StaticOp& op = out.ops[slot];
      op.info = info;
      op.word = word;
      op.rd = info->f_rd.valid ? static_cast<uint8_t>(info->f_rd.extract(word)) : 0;
      op.ra = info->f_ra.valid ? static_cast<uint8_t>(info->f_ra.extract(word)) : 0;
      op.rb = info->f_rb.valid ? static_cast<uint8_t>(info->f_rb.extract(word)) : 0;
      op.imm = info->f_imm.valid ? static_cast<int32_t>(info->f_imm.extract(word)) : 0;
      ++out.num_ops;
      if (set_.is_stop(word)) break;
      if (slot + 1 == isa.issue_width) {
        issue(DecodeIssueKind::Oversubscribed, item, 0,
              strf("no stop bit within the %d-issue width of ISA %s",
                   isa.issue_width, isa.name.c_str()));
        return false;
      }
    }
    out.size_bytes = static_cast<uint8_t>(out.num_ops * 4);
    classify(out);
    return true;
  }

  /// Derives the static control-flow facts from the decoded operations.
  void classify(StaticInstr& instr) {
    for (int s = 0; s < instr.num_ops; ++s) {
      const StaticOp& op = instr.ops[s];
      const isa::OpInfo& info = *op.info;
      if (sem_is(info, "halt")) {
        instr.is_halt = true;
        instr.has_fallthrough = false;
        continue;
      }
      if (sem_is(info, "switchtarget")) {
        instr.isa_after = op.imm;
        continue;
      }
      if (!info.is_branch) continue;
      // First control-transfer operation classifies the instruction; a
      // second one is a bundle hazard reported by the checks.
      const bool first = !instr.has_target && !instr.has_indirect_target &&
                         !instr.is_ret && !instr.is_cond_branch;
      const auto target =
          isa::static_branch_target(info, op.imm, instr.addr + instr.num_ops * 4u);
      if (!first) continue;
      if (info.is_call) {
        instr.is_call = true;
        if (target) {
          instr.has_target = true;
          instr.target = *target;
        } else {
          instr.has_indirect_target = true; // JALR
        }
        // falls through: control returns after the call
      } else if (info.is_ret) {
        // JR: a return when through the link register, otherwise an
        // indirect jump (e.g. a computed goto / jump table).
        instr.is_ret = op.ra == 1;
        instr.has_indirect_target = op.ra != 1;
        instr.has_fallthrough = false;
      } else if (target) {
        const SameRegBranch kind = same_reg_branch(info);
        const bool same = info.f_ra.valid && info.f_rb.valid && op.ra == op.rb;
        if (info.reloc == adl::RelocKind::PcRel &&
            !(same && kind != SameRegBranch::Unknown)) {
          instr.is_cond_branch = true;
          instr.has_target = true;
          instr.target = *target;
        } else if (same && kind == SameRegBranch::NeverTaken) {
          // statically never taken: pure fallthrough
        } else {
          // J, or a comparison of a register with itself that always holds
          instr.has_target = true;
          instr.has_fallthrough = false;
          instr.target = *target;
        }
      } else {
        instr.has_indirect_target = true;
        instr.has_fallthrough = false;
      }
    }
    // Instructions using the whole issue width with a stop bit on the last
    // word still fall through normally — nothing to do.
  }

  void traverse(const WorkItem& seed) {
    std::deque<WorkItem> work;
    work.push_back(seed);
    while (!work.empty()) {
      const WorkItem item = work.front();
      work.pop_front();
      const isa::IsaInfo* isa = set_.find_isa(item.isa_id);
      if (isa == nullptr) {
        issue(DecodeIssueKind::UnknownIsa, item, 0,
              strf("SWITCHTARGET selects undefined ISA id %d", item.isa_id));
        continue;
      }
      if ((item.addr & 3u) != 0 || item.addr < out_.text_addr ||
          item.addr >= out_.text_end) {
        issue(DecodeIssueKind::BadAddress, item, 0,
              strf("control transfer to %s leaves the text section",
                   hex32(item.addr).c_str()));
        continue;
      }

      auto it = out_.instrs.find(item.addr);
      if (it != out_.instrs.end()) {
        StaticInstr& existing = it->second;
        const uint32_t bit = 1u << static_cast<unsigned>(item.isa_id & 31);
        if ((existing.inbound_isas & bit) != 0) continue; // already explored
        if (item.isa_id != existing.isa_id) {
          // Reached again under a different ISA: the decodings must agree
          // (ISA-invariant encodings, e.g. the single-operation library
          // stubs); otherwise the transition is unsafe.
          StaticInstr redecoded;
          if (!decode_one(item, *isa, redecoded)) continue;
          bool equal = redecoded.num_ops == existing.num_ops;
          for (int s = 0; equal && s < existing.num_ops; ++s)
            equal = redecoded.ops[s].info == existing.ops[s].info &&
                    redecoded.ops[s].word == existing.ops[s].word;
          if (!equal) {
            issue(DecodeIssueKind::IsaConflict, item, existing.isa_id,
                  strf("decodes differently under ISA %s than under ISA %s",
                       isa->name.c_str(),
                       set_.find_isa(existing.isa_id)->name.c_str()));
            continue;
          }
        }
        existing.inbound_isas |= bit;
        push_successors(existing, item, work);
        continue;
      }

      StaticInstr instr;
      if (!decode_one(item, *isa, instr)) continue;
      instr.inbound_isas = 1u << static_cast<unsigned>(item.isa_id & 31);
      if (FuncRegion* f = region_at(item.addr)) {
        if (!item.speculative) f->reached = true;
        if (item.addr == f->addr) f->entry_isa_id = item.isa_id;
        if (instr.has_indirect_target && !instr.is_call)
          f->has_indirect_jump = true;
      }
      auto [pos, inserted] = out_.instrs.emplace(item.addr, instr);
      (void)inserted;
      push_successors(pos->second, item, work);
    }
  }

  void push_successors(const StaticInstr& instr, const WorkItem& item,
                       std::deque<WorkItem>& work) {
    // SWITCHTARGET changes the ISA only for the fallthrough path; branch
    // targets are decoded under the ISA active *at* the instruction (the
    // switch is serial_only, so it cannot share a bundle with a branch).
    if (instr.isa_after != item.isa_id &&
        set_.find_isa(instr.isa_after) == nullptr) {
      issue(DecodeIssueKind::UnknownIsa,
            {instr.addr, instr.isa_after, item.addr, item.speculative}, 0,
            strf("SWITCHTARGET selects undefined ISA id %d", instr.isa_after));
    } else if (instr.has_fallthrough) {
      work.push_back({instr.end(), instr.isa_after, instr.addr, item.speculative});
    }
    if (instr.has_target)
      work.push_back({instr.target, item.isa_id, instr.addr, item.speculative});
  }

  const elf::ElfFile& exe_;
  const isa::IsaSet& set_;
  Program& out_;
  const elf::Section* text_ = nullptr;
};

} // namespace

const FuncRegion* Program::function_at(uint32_t addr) const {
  auto it = std::upper_bound(
      functions.begin(), functions.end(), addr,
      [](uint32_t a, const FuncRegion& f) { return a < f.addr; });
  if (it == functions.begin()) return nullptr;
  --it;
  return it->contains(addr) ? &*it : nullptr;
}

const FuncRegion* Program::function_named(std::string_view name) const {
  for (const FuncRegion& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

const StaticInstr* Program::instr_at(uint32_t addr) const {
  auto it = instrs.find(addr);
  return it == instrs.end() ? nullptr : &it->second;
}

Program decode_program(const elf::ElfFile& exe, const isa::IsaSet& set) {
  Program out;
  Decoder(exe, set, out).run();
  return out;
}

} // namespace ksim::analysis
