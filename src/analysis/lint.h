// klint — static analysis of linked K-ISA executables (the `ksim lint`
// subcommand).  Decodes the program statically (program.h), builds
// per-function CFGs (cfg.h), runs the checker pipeline (checks.h) and the
// static ILP bound (ilp_bound.h) and renders the results as human-readable
// text or machine-readable JSON.
#pragma once

#include <string>
#include <vector>

#include "analysis/checks.h"
#include "analysis/ilp_bound.h"
#include "elf/elf.h"

namespace ksim::analysis {

struct LintOptions {
  bool ilp = false;          ///< compute the static per-function ILP bounds
  unsigned memory_delay = 3; ///< ideal memory latency for the ILP bound
  int max_findings = 0;      ///< truncate the report after N findings; 0 = all
};

struct LintResult {
  std::vector<Finding> findings; ///< sorted by address, then check name
  std::vector<FuncIlp> ilp;      ///< one row per analyzed function (opt-in)
  int functions = 0;             ///< function regions analyzed
  int instructions = 0;          ///< statically decoded instructions
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  int suppressed = 0;            ///< findings dropped by max_findings

  /// Errors and warnings make a program dirty; notes are informational.
  bool clean() const { return errors == 0 && warnings == 0; }
};

/// Runs every pass over `exe`.  Throws ksim::Error if `exe` is not a linked
/// executable for an ISA of `set`.
LintResult run_lint(const elf::ElfFile& exe, const isa::IsaSet& set,
                    const LintOptions& options = {});

/// Human-readable report (one finding per line plus a summary).  Notes are
/// only listed when `verbose`; `label` names the target (file or workload).
std::string render_text(const LintResult& result, const std::string& label,
                        bool verbose);

/// Machine-readable JSON object: {"target", "clean", "findings": [...],
/// "ilp": [...], "summary": {...}}.
std::string render_json(const LintResult& result, const std::string& label);

} // namespace ksim::analysis
