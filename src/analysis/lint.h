// klint — static analysis of linked K-ISA executables (the `ksim lint`
// subcommand and api::Session::lint()).  Decodes the program statically
// (program.h), builds per-function CFGs and value-range results (cfg.h,
// value_range.h), constructs the whole-program call graph and function
// summaries (callgraph.h, summaries.h), runs the per-function and
// whole-program checker pipeline (checks.h), classifies JIT readiness
// (translatability.h) and the static ILP bound (ilp_bound.h), and renders
// the results as human-readable text or schema-versioned JSON.
#pragma once

#include <string>
#include <vector>

#include "analysis/checks.h"
#include "analysis/ilp_bound.h"
#include "analysis/translatability.h"
#include "elf/elf.h"

namespace ksim::analysis {

struct LintOptions {
  bool ilp = false;          ///< compute the static per-function ILP bounds
  unsigned memory_delay = 3; ///< ideal memory latency for the ILP bound
  int max_findings = 0;      ///< truncate the report after N findings; 0 = all
};

/// Whole-program call-graph statistics for the report.
struct CallGraphStats {
  int nodes = 0;               ///< function regions
  int edges = 0;               ///< resolved call/tail-transfer edges
  int unresolved_sites = 0;    ///< indirect sites with unknown target sets
  int recursive_functions = 0; ///< functions on a call cycle
  int dead_functions = 0;      ///< unreachable along resolved call edges
  /// Worst-case stack depth in bytes from the program entry; -1 when not
  /// statically bounded (recursion, unresolved calls, unknown frames).
  int64_t max_stack_depth = -1;
};

struct LintResult {
  std::vector<Finding> findings; ///< sorted by address, then check name
  std::vector<FuncIlp> ilp;      ///< one row per analyzed function (opt-in)
  CallGraphStats callgraph;
  TranslatabilityReport translatability;
  int functions = 0;             ///< function regions analyzed
  int instructions = 0;          ///< statically decoded instructions
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  int suppressed = 0;            ///< findings dropped by max_findings

  /// Errors and warnings make a program dirty; notes are informational.
  bool clean() const { return errors == 0 && warnings == 0; }
};

/// Runs every pass over `exe`.  Throws ksim::Error if `exe` is not a linked
/// executable for an ISA of `set`.
LintResult run_lint(const elf::ElfFile& exe, const isa::IsaSet& set,
                    const LintOptions& options = {});

/// Human-readable report (one finding per line plus a summary).  Notes are
/// only listed when `verbose`; `label` names the target (file or workload).
std::string render_text(const LintResult& result, const std::string& label,
                        bool verbose);

/// Machine-readable JSON object: {"target", "clean", "findings": [...],
/// "ilp": [...], "summary": {...}}.
std::string render_json(const LintResult& result, const std::string& label);

} // namespace ksim::analysis
