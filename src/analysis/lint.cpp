#include "analysis/lint.h"

#include <algorithm>

#include "support/json.h"
#include "support/strings.h"

namespace ksim::analysis {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strf("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

} // namespace

LintResult run_lint(const elf::ElfFile& exe, const isa::IsaSet& set,
                    const LintOptions& options) {
  LintResult result;
  const Program program = decode_program(exe, set);
  result.instructions = static_cast<int>(program.instrs.size());

  check_decode_issues(program, result.findings);
  check_bundle_hazards(program, result.findings);
  for (const FuncRegion& func : program.functions) {
    ++result.functions;
    const Cfg cfg = build_cfg(program, func);
    check_reachability(program, cfg, result.findings);
    check_definite_assignment(program, cfg, result.findings);
    if (options.ilp) {
      FuncIlp fi = compute_static_ilp(cfg, options.memory_delay);
      if (fi.ops > 0) result.ilp.push_back(std::move(fi));
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.addr != b.addr) return a.addr < b.addr;
              if (a.check != b.check) return a.check < b.check;
              return a.message < b.message;
            });
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.addr == b.addr && a.check == b.check &&
                           a.message == b.message;
                  }),
      result.findings.end());

  for (const Finding& f : result.findings) {
    if (f.severity == Severity::Error) ++result.errors;
    else if (f.severity == Severity::Warning) ++result.warnings;
    else ++result.notes;
  }
  if (options.max_findings > 0 &&
      static_cast<int>(result.findings.size()) > options.max_findings) {
    result.suppressed =
        static_cast<int>(result.findings.size()) - options.max_findings;
    result.findings.resize(static_cast<size_t>(options.max_findings));
  }
  return result;
}

std::string render_text(const LintResult& result, const std::string& label,
                        bool verbose) {
  std::string out;
  for (const Finding& f : result.findings) {
    if (f.severity == Severity::Note && !verbose) continue;
    out += strf("%s: %s: %s: [%s] %s\n", hex32(f.addr).c_str(),
                f.function.empty() ? "<no function>" : f.function.c_str(),
                to_string(f.severity), f.check.c_str(), f.message.c_str());
  }
  if (result.suppressed > 0)
    out += strf("... %d further findings suppressed\n", result.suppressed);
  if (!result.ilp.empty()) {
    out += strf("%-20s %7s %7s %10s %10s %9s\n", "function", "blocks", "ops",
                "critpath", "max-block", "weighted");
    for (const FuncIlp& fi : result.ilp)
      out += strf("%-20s %7u %7u %10u %10.3f %9.3f\n", fi.function.c_str(),
                  fi.blocks, fi.ops, fi.critical_path, fi.max_block_bound,
                  fi.weighted_bound());
  }
  out += strf("%s: %d functions, %d instructions: %d errors, %d warnings, "
              "%d notes — %s\n",
              label.c_str(), result.functions, result.instructions,
              result.errors, result.warnings, result.notes,
              result.clean() ? "clean" : "NOT clean");
  return out;
}

std::string render_json(const LintResult& result, const std::string& label) {
  std::string out = "{\n";
  // Versioned header keys shared by every ksim JSON document (DESIGN.md §7).
  out += "  \"schema\": \"ksim.lint\",\n";
  out += strf("  \"schema_version\": %d,\n", support::kJsonSchemaVersion);
  out += strf("  \"target\": \"%s\",\n", json_escape(label).c_str());
  out += strf("  \"clean\": %s,\n", result.clean() ? "true" : "false");
  out += "  \"findings\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += strf("    {\"severity\": \"%s\", \"check\": \"%s\", "
                "\"addr\": \"%s\", \"function\": \"%s\", \"message\": \"%s\"}",
                to_string(f.severity), json_escape(f.check).c_str(),
                hex32(f.addr).c_str(), json_escape(f.function).c_str(),
                json_escape(f.message).c_str());
  }
  out += "\n  ],\n";
  out += "  \"ilp\": [";
  for (size_t i = 0; i < result.ilp.size(); ++i) {
    const FuncIlp& fi = result.ilp[i];
    out += i == 0 ? "\n" : ",\n";
    out += strf("    {\"function\": \"%s\", \"blocks\": %u, \"ops\": %u, "
                "\"critical_path\": %u, \"max_block_bound\": %.4f, "
                "\"weighted_bound\": %.4f}",
                json_escape(fi.function).c_str(), fi.blocks, fi.ops,
                fi.critical_path, fi.max_block_bound, fi.weighted_bound());
  }
  out += "\n  ],\n";
  out += strf("  \"summary\": {\"functions\": %d, \"instructions\": %d, "
              "\"errors\": %d, \"warnings\": %d, \"notes\": %d, "
              "\"suppressed\": %d}\n",
              result.functions, result.instructions, result.errors,
              result.warnings, result.notes, result.suppressed);
  out += "}\n";
  return out;
}

} // namespace ksim::analysis
