#include "analysis/lint.h"

#include <algorithm>

#include "isa/arch_state.h"
#include "support/json.h"
#include "support/strings.h"

namespace ksim::analysis {
namespace {

/// Bytes reserved for the simulated stack between kStackTop and the heap
/// end (mirrors the 1 MiB guard Simulator::load establishes).
constexpr uint32_t kStackBudget = 1u << 20;

} // namespace

LintResult run_lint(const elf::ElfFile& exe, const isa::IsaSet& set,
                    const LintOptions& options) {
  LintResult result;
  const Program program = decode_program(exe, set);
  result.instructions = static_cast<int>(program.instrs.size());

  check_decode_issues(program, result.findings);
  check_bundle_hazards(program, result.findings);

  const FuncAnalyses fa = analyze_functions(program);
  for (const FuncRegion& func : program.functions) {
    ++result.functions;
    const auto it = fa.find(func.addr);
    if (it == fa.end()) continue;
    const Cfg& cfg = it->second.cfg;
    check_reachability(program, cfg, result.findings);
    check_definite_assignment(program, cfg, result.findings);
    if (options.ilp) {
      FuncIlp fi = compute_static_ilp(cfg, options.memory_delay);
      if (fi.ops > 0) result.ilp.push_back(std::move(fi));
    }
  }

  // Whole-program passes: call graph, interprocedural summaries, the global
  // checkers and the JIT-readiness classification.
  const CallGraph cg = build_callgraph(exe, program, fa);
  const FuncSummaries summaries = compute_summaries(program, cg, fa);

  WholeProgram wp;
  wp.exe = &exe;
  wp.program = &program;
  wp.fa = &fa;
  wp.cg = &cg;
  wp.summaries = &summaries;
  wp.ram_size = isa::kDefaultRamSize;
  wp.stack_budget = kStackBudget;
  check_memory_bounds(wp, result.findings);
  check_stack_depth(wp, result.findings);
  check_dead_functions(wp, result.findings);
  check_recursion_cycles(wp, result.findings);
  check_isa_returns(wp, result.findings);

  result.translatability =
      classify_translatability(exe, program, fa, isa::kDefaultRamSize);

  result.callgraph.nodes = static_cast<int>(cg.nodes.size());
  result.callgraph.edges = static_cast<int>(cg.edges.size());
  result.callgraph.unresolved_sites =
      static_cast<int>(cg.unresolved_sites.size());
  for (const CgNode& node : cg.nodes) {
    if (node.recursive) ++result.callgraph.recursive_functions;
    if (!node.reachable) ++result.callgraph.dead_functions;
  }
  if (cg.entry >= 0) {
    const CgNode& entry = cg.nodes[static_cast<size_t>(cg.entry)];
    bool known = !entry.recursive && !entry.has_unresolved_call;
    int64_t deepest = 0;
    for (int eid : entry.calls) {
      const CallEdge& e = cg.edges[static_cast<size_t>(eid)];
      const auto sit = e.callee >= 0
                           ? summaries.find(
                                 cg.nodes[static_cast<size_t>(e.callee)]
                                     .func->addr)
                           : summaries.end();
      if (sit == summaries.end() || !sit->second.depth_known) {
        known = false;
        break;
      }
      deepest = std::max(deepest, sit->second.max_depth);
    }
    if (known) result.callgraph.max_stack_depth = deepest;
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.addr != b.addr) return a.addr < b.addr;
              if (a.check != b.check) return a.check < b.check;
              return a.message < b.message;
            });
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.addr == b.addr && a.check == b.check &&
                           a.message == b.message;
                  }),
      result.findings.end());

  for (const Finding& f : result.findings) {
    if (f.severity == Severity::Error) ++result.errors;
    else if (f.severity == Severity::Warning) ++result.warnings;
    else ++result.notes;
  }
  if (options.max_findings > 0 &&
      static_cast<int>(result.findings.size()) > options.max_findings) {
    result.suppressed =
        static_cast<int>(result.findings.size()) - options.max_findings;
    result.findings.resize(static_cast<size_t>(options.max_findings));
  }
  return result;
}

std::string render_text(const LintResult& result, const std::string& label,
                        bool verbose) {
  std::string out;
  for (const Finding& f : result.findings) {
    if (f.severity == Severity::Note && !verbose) continue;
    out += strf("%s: %s: %s: [%s] %s\n", hex32(f.addr).c_str(),
                f.function.empty() ? "<no function>" : f.function.c_str(),
                to_string(f.severity), f.check.c_str(), f.message.c_str());
  }
  if (result.suppressed > 0)
    out += strf("... %d further findings suppressed\n", result.suppressed);
  if (!result.ilp.empty()) {
    out += strf("%-20s %7s %7s %10s %10s %9s\n", "function", "blocks", "ops",
                "critpath", "max-block", "weighted");
    for (const FuncIlp& fi : result.ilp)
      out += strf("%-20s %7u %7u %10u %10.3f %9.3f\n", fi.function.c_str(),
                  fi.blocks, fi.ops, fi.critical_path, fi.max_block_bound,
                  fi.weighted_bound());
  }
  out += strf("callgraph: %d functions, %d call edges, %d unresolved indirect "
              "sites, %d recursive, %d dead",
              result.callgraph.nodes, result.callgraph.edges,
              result.callgraph.unresolved_sites,
              result.callgraph.recursive_functions,
              result.callgraph.dead_functions);
  if (result.callgraph.max_stack_depth >= 0)
    out += strf("; max stack depth %lld bytes",
                static_cast<long long>(result.callgraph.max_stack_depth));
  out += "\n";
  out += strf("translatability: %d/%d functions JIT-safe\n",
              result.translatability.safe_functions,
              result.translatability.total_functions);
  out += strf("%s: %d functions, %d instructions: %d errors, %d warnings, "
              "%d notes — %s\n",
              label.c_str(), result.functions, result.instructions,
              result.errors, result.warnings, result.notes,
              result.clean() ? "clean" : "NOT clean");
  return out;
}

std::string render_json(const LintResult& result, const std::string& label) {
  support::JsonWriter w;
  w.begin_object();
  // Versioned header keys shared by every ksim JSON document (DESIGN.md §7).
  w.field("schema", "ksim.lint");
  w.field("schema_version", support::kJsonSchemaVersion);
  w.field("target", label);
  w.field("clean", result.clean());

  w.begin_array("findings");
  for (const Finding& f : result.findings) {
    w.begin_object();
    w.field("severity", to_string(f.severity));
    w.field("check", f.check);
    w.field("addr", hex32(f.addr));
    w.field("function", f.function);
    w.field("message", f.message);
    w.end();
  }
  w.end();

  w.begin_array("ilp");
  for (const FuncIlp& fi : result.ilp) {
    w.begin_object();
    w.field("function", fi.function);
    w.field("blocks", fi.blocks);
    w.field("ops", fi.ops);
    w.field("critical_path", fi.critical_path);
    w.field("max_block_bound", fi.max_block_bound);
    w.field("weighted_bound", fi.weighted_bound());
    w.end();
  }
  w.end();

  w.begin_object("callgraph");
  w.field("functions", result.callgraph.nodes);
  w.field("call_edges", result.callgraph.edges);
  w.field("unresolved_indirect_sites", result.callgraph.unresolved_sites);
  w.field("recursive_functions", result.callgraph.recursive_functions);
  w.field("dead_functions", result.callgraph.dead_functions);
  w.field("max_stack_depth", result.callgraph.max_stack_depth);
  w.end();

  w.begin_object("translatability");
  w.field("safe_functions", result.translatability.safe_functions);
  w.field("total_functions", result.translatability.total_functions);
  w.begin_array("functions");
  for (const FuncTranslatability& ft : result.translatability.functions) {
    w.begin_object();
    w.field("function", ft.name);
    w.field("addr", hex32(ft.addr));
    w.field("entry_isa", ft.entry_isa);
    w.field("jit_safe", ft.jit_safe());
    w.begin_array("reasons");
    for (const std::string& r : reason_names(ft.reasons)) w.element(r);
    w.end();
    w.field("safe_blocks", ft.safe_blocks);
    w.field("total_blocks", ft.total_blocks);
    // Only the unsafe blocks are listed; the rest of the function's blocks
    // are JIT-safe by complement.
    w.begin_array("unsafe_blocks");
    for (const BlockTranslatability& bt : ft.blocks) {
      if (bt.jit_safe()) continue;
      w.begin_object();
      w.field("start", hex32(bt.start));
      w.field("end", hex32(bt.end));
      w.begin_array("reasons");
      for (const std::string& r : reason_names(bt.reasons)) w.element(r);
      w.end();
      w.end();
    }
    w.end();
    w.end();
  }
  w.end();
  w.end();

  w.begin_object("summary");
  w.field("functions", result.functions);
  w.field("instructions", result.instructions);
  w.field("errors", result.errors);
  w.field("warnings", result.warnings);
  w.field("notes", result.notes);
  w.field("suppressed", result.suppressed);
  w.end();
  w.end();
  return w.str();
}

} // namespace ksim::analysis
