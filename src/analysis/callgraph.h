// Whole-program call graph over the statically decoded mixed-ISA image.
// Direct call/jump edges come straight from the decoder; register-indirect
// transfers (JR/JALR) are resolved with the value-range results — a constant
// target register yields a single edge, and the jump-table idiom (a bounded
// LW from a static table followed by the indirect jump) yields one edge per
// table entry.  The graph carries the SCC condensation (recursion cycles)
// and a bottom-up traversal order for the interprocedural summary pass
// (summaries.h) and the stack-depth / dead-function checkers (checks.h).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/value_range.h"
#include "elf/elf.h"

namespace ksim::analysis {

/// Per-function CFG plus its value-range fixed point, the unit every
/// whole-program pass consumes.  Keyed by function address.
struct FuncAnalysis {
  Cfg cfg;
  ValueAnalysis values;
};
using FuncAnalyses = std::map<uint32_t, FuncAnalysis>;

/// Builds the CFG and runs the value-range analysis for every decoded
/// function region of `program` (empty regions get an empty CFG).
FuncAnalyses analyze_functions(const Program& program);

/// How a call edge's target became known.
enum class CallKind : uint8_t {
  Direct,       ///< JAL / J with a static target
  Indirect,     ///< JALR/JR through a register proven constant
  Table,        ///< JALR/JR through a bounded jump-table load
};

struct CallEdge {
  uint32_t site = 0;   ///< address of the transferring instruction
  int caller = -1;     ///< node index (== index into Program::functions)
  int callee = -1;     ///< node index
  uint32_t target = 0; ///< resolved target address
  CallKind kind = CallKind::Direct;
  bool tail = false;   ///< a jump, not a call: no return to the site
};

struct CgNode {
  const FuncRegion* func = nullptr;
  std::vector<int> calls;   ///< outgoing edge indices
  std::vector<int> callers; ///< incoming edge indices
  /// Reachable from the entry function along resolved call edges.
  bool reachable = false;
  int scc = -1;             ///< condensation component id
  bool recursive = false;   ///< on a call cycle (including direct self-calls)
  /// Contains an indirect call/jump site whose target set is unknown: the
  /// node's outgoing edges under-approximate and dependent results degrade.
  bool has_unresolved_call = false;
  /// The function's entry address appears as data (jump-table word in an
  /// allocatable section, or a constant register value somewhere in the
  /// program), so unresolved indirect sites may reach it.
  bool address_taken = false;
};

struct CallGraph {
  std::vector<CgNode> nodes; ///< parallel to Program::functions
  std::vector<CallEdge> edges;
  int entry = -1;            ///< node containing the program entry point
  /// Node indices with every resolved callee preceding its callers
  /// (reverse-topological over the SCC condensation; members of one cycle
  /// are adjacent).  The summary pass iterates this order.
  std::vector<int> bottom_up;
  std::vector<uint32_t> unresolved_sites; ///< indirect sites left target-less

  /// Node index of the function containing `addr`; -1 if none.
  int node_at(const Program& program, uint32_t addr) const;
};

CallGraph build_callgraph(const elf::ElfFile& exe, const Program& program,
                          const FuncAnalyses& fa);

/// Result of resolving one register-indirect transfer.
struct IndirectResolution {
  bool resolved = false;  ///< targets is the *complete* target set
  bool via_table = false; ///< targets read from an in-image jump table
  /// The table bytes live in a writable section, so the resolved set is
  /// only valid while the program does not rewrite the table.
  bool table_writable = false;
  std::vector<uint32_t> targets;
};

/// Resolves the JR/JALR ending `instr` using `fa`'s value-range results;
/// reads jump-table words from `exe`'s sections when the target register is
/// a bounded load from a static table.  Shared by the call-graph builder and
/// the translatability classifier (translatability.h).
IndirectResolution resolve_indirect(const elf::ElfFile& exe,
                                    const Program& program,
                                    const FuncAnalysis& fa,
                                    const StaticInstr& instr);

} // namespace ksim::analysis
