// JIT-readiness classification: decides, per basic block and per function,
// whether a superblock-eligible region could be translated to host code
// ahead of time.  A block is JIT-unsafe when it (a) executes SIMOP (the
// emulated C library runs host-side and serializes the pipeline), (b) may
// trap on a statically out-of-range memory access, (c) may store into the
// text section (self-modifying code invalidates a translation), or (d) ends
// in an indirect transfer whose target set could not be resolved (or lives
// in a writable jump table).  The ROADMAP's superblock JIT consumes this
// report to pick translation candidates; `ksim lint --json` and
// api::Session::lint() export it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/callgraph.h"

namespace ksim::analysis {

/// Why a block cannot be translated (bitmask; 0 = JIT-safe).
enum TranslatabilityReason : unsigned {
  kJitSimop = 1u << 0,             ///< executes SIMOP
  kJitTrapRisk = 1u << 1,          ///< possibly out-of-range load/store
  kJitSelfModifying = 1u << 2,     ///< may store into the text section
  kJitUnresolvedIndirect = 1u << 3,///< indirect target set unknown / mutable
};

/// Stable machine names of the reason bits, in bit order.
std::vector<std::string> reason_names(unsigned reasons);

struct BlockTranslatability {
  uint32_t start = 0;
  uint32_t end = 0; ///< first address past the block
  unsigned reasons = 0;
  bool jit_safe() const { return reasons == 0; }
};

struct FuncTranslatability {
  uint32_t addr = 0;
  std::string name;
  int entry_isa = 0;
  unsigned reasons = 0; ///< union over the function's blocks
  int safe_blocks = 0;
  int total_blocks = 0;
  std::vector<BlockTranslatability> blocks; ///< in address order
  bool jit_safe() const { return reasons == 0; }
};

struct TranslatabilityReport {
  std::vector<FuncTranslatability> functions; ///< in address order
  int safe_functions = 0;
  int total_functions = 0;
};

/// Classifies every analyzed function of `program`.  Memory accesses are
/// judged against `ram_size` (the simulated address space); effective
/// addresses the value analysis cannot bound are treated as safe — the
/// report flags *statically certain* obstacles, the JIT still needs runtime
/// guards for the rest.
TranslatabilityReport classify_translatability(const elf::ElfFile& exe,
                                               const Program& program,
                                               const FuncAnalyses& fa,
                                               uint32_t ram_size);

} // namespace ksim::analysis
