// The klint checker pipeline: each pass inspects the statically decoded
// program (program.h) and its per-function CFGs/dataflow (cfg.h,
// dataflow.h) and appends findings.  Passes:
//   * decode/transition — undecodable words, issue-slot over-subscription,
//     ISA-dependent decodings and SWITCHTARGET targets (paper §V-D),
//   * bundle hazards    — intra-bundle WAW/RAW, serial-only operations in
//     multi-slot bundles, multiple control transfers per bundle (§V-B),
//   * reachability      — unreachable code inside reached functions and
//     fall-through past the end of a function,
//   * definite assignment — registers read before any write on some (or
//     every) path from the function entry, under the software ABI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/program.h"
#include "analysis/summaries.h"

namespace ksim::analysis {

enum class Severity { Note, Warning, Error };

const char* to_string(Severity severity);

struct Finding {
  Severity severity = Severity::Error;
  std::string check;    ///< stable machine name, e.g. "uninit-read"
  uint32_t addr = 0;
  std::string function; ///< enclosing function, empty if unknown
  std::string message;
};

/// Findings for the program-wide decode/transition and bundle passes.
void check_decode_issues(const Program& program, std::vector<Finding>& out);
void check_bundle_hazards(const Program& program, std::vector<Finding>& out);

/// Findings for one function's CFG.
void check_reachability(const Program& program, const Cfg& cfg,
                        std::vector<Finding>& out);
void check_definite_assignment(const Program& program, const Cfg& cfg,
                               std::vector<Finding>& out);

/// Everything the whole-program checkers need, bundled (checks_global.cpp).
struct WholeProgram {
  const elf::ElfFile* exe = nullptr;
  const Program* program = nullptr;
  const FuncAnalyses* fa = nullptr;
  const CallGraph* cg = nullptr;
  const FuncSummaries* summaries = nullptr;
  uint32_t ram_size = 0;     ///< simulated address-space size in bytes
  uint32_t stack_budget = 0; ///< bytes between the stack top and the heap end
};

/// Loads/stores whose value-range-bounded effective address may leave the
/// simulated RAM ("oob-access": Error when certain, Warning when possible)
/// or may store into the text section ("self-modifying-store": Warning).
void check_memory_bounds(const WholeProgram& wp, std::vector<Finding>& out);

/// Statically bounded worst-case stack depth from the program entry against
/// the stack budget ("stack-overflow": Error).  Recursion and unresolved
/// call sites make the bound unknowable ("stack-depth-unknown": Note).
void check_stack_depth(const WholeProgram& wp, std::vector<Finding>& out);

/// Functions unreachable from the entry along resolved call edges
/// ("dead-function": Note).  Address-taken functions are exempt while any
/// indirect site stays unresolved.
void check_dead_functions(const WholeProgram& wp, std::vector<Finding>& out);

/// Call cycles in the call graph ("recursion-cycle": Note, one per cycle).
void check_recursion_cycles(const WholeProgram& wp, std::vector<Finding>& out);

/// Cross-call ISA-transition validation on the *return* side: the ISA
/// active at a callee's return sites must include the ISA the decoder
/// assumed for the code after each call ("isa-return": Error).
void check_isa_returns(const WholeProgram& wp, std::vector<Finding>& out);

} // namespace ksim::analysis
