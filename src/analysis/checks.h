// The klint checker pipeline: each pass inspects the statically decoded
// program (program.h) and its per-function CFGs/dataflow (cfg.h,
// dataflow.h) and appends findings.  Passes:
//   * decode/transition — undecodable words, issue-slot over-subscription,
//     ISA-dependent decodings and SWITCHTARGET targets (paper §V-D),
//   * bundle hazards    — intra-bundle WAW/RAW, serial-only operations in
//     multi-slot bundles, multiple control transfers per bundle (§V-B),
//   * reachability      — unreachable code inside reached functions and
//     fall-through past the end of a function,
//   * definite assignment — registers read before any write on some (or
//     every) path from the function entry, under the software ABI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/program.h"

namespace ksim::analysis {

enum class Severity { Note, Warning, Error };

const char* to_string(Severity severity);

struct Finding {
  Severity severity = Severity::Error;
  std::string check;    ///< stable machine name, e.g. "uninit-read"
  uint32_t addr = 0;
  std::string function; ///< enclosing function, empty if unknown
  std::string message;
};

/// Findings for the program-wide decode/transition and bundle passes.
void check_decode_issues(const Program& program, std::vector<Finding>& out);
void check_bundle_hazards(const Program& program, std::vector<Finding>& out);

/// Findings for one function's CFG.
void check_reachability(const Program& program, const Cfg& cfg,
                        std::vector<Finding>& out);
void check_definite_assignment(const Program& program, const Cfg& cfg,
                               std::vector<Finding>& out);

} // namespace ksim::analysis
