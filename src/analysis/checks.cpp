#include "analysis/checks.h"

#include <algorithm>

#include "support/strings.h"

namespace ksim::analysis {
namespace {

std::string func_name(const Program& program, uint32_t addr) {
  const FuncRegion* f = program.function_at(addr);
  return f == nullptr ? std::string() : f->name;
}

void add(std::vector<Finding>& out, Severity severity, std::string check,
         uint32_t addr, const Program& program, std::string message) {
  Finding f;
  f.severity = severity;
  f.check = std::move(check);
  f.addr = addr;
  f.function = func_name(program, addr);
  f.message = std::move(message);
  out.push_back(std::move(f));
}

std::string reg_list(isa::RegMask mask) {
  std::string out;
  while (mask != 0) {
    const unsigned r = static_cast<unsigned>(__builtin_ctz(mask));
    mask &= mask - 1;
    if (!out.empty()) out += ", ";
    out += "r" + std::to_string(r);
  }
  return out;
}

} // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

void check_decode_issues(const Program& program, std::vector<Finding>& out) {
  for (const DecodeIssue& di : program.issues) {
    // Failures on speculative paths (functions never statically reached,
    // decoded under a guessed ISA) are informational only.
    const Severity sev = di.speculative ? Severity::Note : Severity::Error;
    std::string from =
        di.from_addr == di.addr
            ? std::string()
            : strf(" (reached from %s)", hex32(di.from_addr).c_str());
    // A decode failure just past a cross-function control transfer means
    // the *transition* is broken — the target is encoded for another ISA
    // and the inbound path lacks a SWITCHTARGET (paper §V-D).  The same
    // failure inside one function is a genuine encoding defect.
    const bool crosses_function =
        program.function_at(di.addr) != program.function_at(di.from_addr);
    switch (di.kind) {
      case DecodeIssueKind::Undecodable:
      case DecodeIssueKind::Oversubscribed:
        if (crosses_function) {
          add(out, sev, "isa-transition", di.addr, program,
              di.detail + from + " — missing SWITCHTARGET on the inbound path?");
          break;
        }
        add(out, sev,
            di.kind == DecodeIssueKind::Undecodable ? "undecodable"
                                                    : "oversubscription",
            di.addr, program, di.detail + from);
        break;
      case DecodeIssueKind::IsaConflict:
      case DecodeIssueKind::UnknownIsa:
        add(out, sev, "isa-transition", di.addr, program, di.detail + from);
        break;
      case DecodeIssueKind::BadAddress:
        add(out, sev, "bad-address", di.addr, program, di.detail + from);
        break;
    }
  }
}

void check_bundle_hazards(const Program& program, std::vector<Finding>& out) {
  for (const auto& [addr, instr] : program.instrs) {
    if (instr.num_ops < 2) continue;
    int branch_ops = 0;
    for (int a = 0; a < instr.num_ops; ++a) {
      const StaticOp& op_a = instr.ops[a];
      const isa::OpInfo& info_a = *op_a.info;
      if (info_a.serial_only)
        add(out, Severity::Error, "bundle-serial", addr, program,
            strf("%s must be the only operation of its instruction but "
                 "shares a %d-slot bundle",
                 info_a.name.c_str(), instr.num_ops));
      if (info_a.is_branch) ++branch_ops;

      const isa::RegMask dst_a = isa::op_dst_mask(info_a, op_a.rd);
      for (int b = 0; b < instr.num_ops; ++b) {
        if (a == b) continue;
        const StaticOp& op_b = instr.ops[b];
        if (b > a) {
          const isa::RegMask waw =
              dst_a & isa::op_dst_mask(*op_b.info, op_b.rd);
          if (waw != 0)
            add(out, Severity::Error, "bundle-waw", addr, program,
                strf("slots %d and %d both write %s; the parallel result is "
                     "undefined in hardware",
                     a, b, reg_list(waw).c_str()));
        }
        if (b > a) {
          // With the parallel-read semantics of §V-B the later slot reads
          // the *pre-bundle* value; packing a dependent operation into the
          // same bundle is almost always a scheduler bug.  (Slot b < a is
          // the swap idiom — a plain parallel read — and stays silent.)
          const isa::RegMask raw =
              dst_a & isa::op_src_mask(*op_b.info, op_b.rd, op_b.ra, op_b.rb);
          if (raw != 0)
            add(out, Severity::Warning, "bundle-raw", addr, program,
                strf("slot %d reads %s which slot %d writes in the same "
                     "bundle; it sees the pre-bundle value",
                     b, reg_list(raw).c_str(), a));
        }
      }
    }
    if (branch_ops > 1)
      add(out, Severity::Error, "bundle-control", addr, program,
          strf("%d control-transfer operations in one bundle; at most one "
               "may decide the next instruction",
               branch_ops));
  }
}

void check_reachability(const Program& program, const Cfg& cfg,
                        std::vector<Finding>& out) {
  const FuncRegion& func = *cfg.func;
  if (cfg.blocks.empty()) return;

  // Fall-through past the end of the function region.
  for (const BasicBlock& b : cfg.blocks)
    if (b.falls_off_end)
      add(out, func.speculative ? Severity::Note : Severity::Error,
          "fallthrough", b.instrs.back()->addr, program,
          strf("control falls through past the end of %s", func.name.c_str()));

  // Unreachable bytes: region bytes not covered by any decoded instruction.
  // A register-indirect jump makes static reachability incomplete (jump
  // tables), so stay silent in that case.
  if (func.has_indirect_jump) return;
  std::vector<std::pair<uint32_t, uint32_t>> covered;
  for (const BasicBlock& b : cfg.blocks)
    for (const StaticInstr* in : b.instrs)
      covered.emplace_back(in->addr, in->end());
  std::sort(covered.begin(), covered.end());
  uint32_t pos = func.addr;
  auto report_gap = [&](uint32_t lo, uint32_t hi) {
    if (lo >= hi) return;
    add(out, func.speculative ? Severity::Note : Severity::Warning,
        "unreachable", lo, program,
        strf("%u bytes of %s are unreachable from the function entry",
             hi - lo, func.name.c_str()));
  };
  for (const auto& [lo, hi] : covered) {
    if (lo > pos) report_gap(pos, lo);
    pos = std::max(pos, hi);
  }
  report_gap(pos, func.end());
}

void check_definite_assignment(const Program& program, const Cfg& cfg,
                               std::vector<Finding>& out) {
  const FuncRegion& func = *cfg.func;
  if (cfg.blocks.empty()) return;
  const bool is_program_entry = func.contains(program.entry);
  const std::vector<DefinedState> defined =
      compute_defined(cfg, abi_entry_defined(is_program_entry));

  for (const BasicBlock& b : cfg.blocks) {
    RegMask must = defined[static_cast<size_t>(b.id)].must_in;
    RegMask may = defined[static_cast<size_t>(b.id)].may_in;
    // Blocks the dataflow never reached from the entry (no predecessors,
    // not the entry block) keep lattice top; nothing to report.
    if (b.id != 0 && b.preds.empty()) continue;
    for (const StaticInstr* instr : b.instrs) {
      const InstrUseDef ud = instr_use_def(*instr);
      const RegMask some_path = ud.explicit_use & ~must;
      const RegMask every_path = ud.explicit_use & ~may;
      if (every_path != 0)
        add(out, func.speculative ? Severity::Note : Severity::Error,
            "uninit-read", instr->addr, program,
            strf("%s read but never written on any path from the entry of %s",
                 reg_list(every_path).c_str(), func.name.c_str()));
      else if (some_path != 0)
        add(out, func.speculative ? Severity::Note : Severity::Warning,
            "uninit-read", instr->addr, program,
            strf("%s may be read uninitialized (unwritten on some path from "
                 "the entry of %s)",
                 reg_list(some_path).c_str(), func.name.c_str()));
      must = (must & ~ud.clobber) | ud.def;
      may = (may & ~ud.clobber) | ud.def;
    }
  }
}

} // namespace ksim::analysis
