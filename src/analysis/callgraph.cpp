#include "analysis/callgraph.h"

#include <algorithm>
#include <string_view>

#include "isa/reg_use.h"

namespace ksim::analysis {
namespace {

/// Jump tables larger than this are treated as unresolved: reading hundreds
/// of speculative targets from a loosely bounded index helps nobody.
constexpr int64_t kMaxTableSpan = 1024;

bool sem_is(const isa::OpInfo& info, std::string_view name) {
  return info.def != nullptr && info.def->semantic == name;
}

/// The register-indirect branch operation of `instr`, or nullptr.
const StaticOp* indirect_branch_op(const StaticInstr& instr) {
  for (int s = instr.num_ops - 1; s >= 0; --s) {
    const StaticOp& op = instr.ops[s];
    if (op.info->is_branch && op.info->reloc == adl::RelocKind::None)
      return &op;
  }
  return nullptr;
}

/// Reads the little-endian word at `addr` from an allocatable section with
/// initialized bytes.  Returns false for unmapped / NOBITS addresses.
bool read_image_word(const elf::ElfFile& exe, uint32_t addr, uint32_t& word,
                     bool& writable) {
  for (const elf::Section& s : exe.sections) {
    if ((s.flags & elf::SHF_ALLOC) == 0 || s.type == elf::SHT_NOBITS) continue;
    if (addr < s.addr || addr + 4 > s.addr + s.data.size()) continue;
    const size_t off = addr - s.addr;
    word = static_cast<uint32_t>(s.data[off]) |
           (static_cast<uint32_t>(s.data[off + 1]) << 8) |
           (static_cast<uint32_t>(s.data[off + 2]) << 16) |
           (static_cast<uint32_t>(s.data[off + 3]) << 24);
    writable = (s.flags & elf::SHF_WRITE) != 0;
    return true;
  }
  return false;
}

/// The last instruction before `instr` in its block that writes `reg` with
/// an explicit destination, or nullptr (including: written by implicit side
/// effects, defined in another block).
const StaticInstr* block_local_def(const FuncAnalysis& fa,
                                   const StaticInstr& instr, unsigned reg,
                                   const StaticOp*& def_op) {
  const BasicBlock* b = fa.cfg.block_at(instr.addr);
  if (b == nullptr) return nullptr;
  const StaticInstr* found = nullptr;
  for (const StaticInstr* in : b->instrs) {
    if (in->addr == instr.addr) break;
    for (int s = 0; s < in->num_ops; ++s) {
      const StaticOp& op = in->ops[s];
      if (op.info->rd_is_dst && (op.rd & 31u) == reg) {
        found = in;
        def_op = &op;
      } else if ((isa::op_dst_mask(*op.info, op.rd) & (1u << reg)) != 0) {
        found = nullptr; // implicitly clobbered: pattern does not apply
        def_op = nullptr;
      }
    }
  }
  return found;
}

} // namespace

FuncAnalyses analyze_functions(const Program& program) {
  FuncAnalyses fa;
  for (const FuncRegion& func : program.functions) {
    FuncAnalysis a;
    a.cfg = build_cfg(program, func);
    a.values = analyze_values(program, a.cfg);
    a.values.cfg = nullptr; // repointed below: a.cfg is about to move
    auto [it, inserted] = fa.emplace(func.addr, std::move(a));
    if (inserted) it->second.values.cfg = &it->second.cfg;
  }
  return fa;
}

IndirectResolution resolve_indirect(const elf::ElfFile& exe,
                                    const Program& program,
                                    const FuncAnalysis& fa,
                                    const StaticInstr& instr) {
  IndirectResolution res;
  const StaticOp* br = indirect_branch_op(instr);
  if (br == nullptr) return res;
  const unsigned reg = br->ra & 31u;

  const ValueRange v = value_before(program, fa.values, instr, reg);
  if (v.is_constant()) {
    res.resolved = true;
    res.targets.push_back(static_cast<uint32_t>(v.lo));
    return res;
  }

  // Jump-table idiom: the target register is a word load whose effective
  // address is a bounded range inside the static image — every word the
  // range can address is a candidate target.
  const StaticOp* def_op = nullptr;
  const StaticInstr* def = block_local_def(fa, instr, reg, def_op);
  if (def == nullptr || def_op == nullptr || !sem_is(*def_op->info, "lw"))
    return res;
  const ValueRange ea = effective_address(program, fa.values, *def, *def_op);
  if (!ea.is_plain_range() || ea.hi - ea.lo > kMaxTableSpan) return res;

  uint32_t first = static_cast<uint32_t>(ea.lo);
  if (first % 4 != 0) first += 4 - first % 4; // loads are word-aligned
  for (uint32_t a = first; a <= static_cast<uint32_t>(ea.hi); a += 4) {
    uint32_t word = 0;
    bool writable = false;
    if (!read_image_word(exe, a, word, writable)) {
      res.targets.clear();
      return res; // part of the range is unmapped: not a static table
    }
    res.table_writable = res.table_writable || writable;
    res.targets.push_back(word);
  }
  if (res.targets.empty()) return res;
  res.resolved = true;
  res.via_table = true;
  return res;
}

int CallGraph::node_at(const Program& program, uint32_t addr) const {
  const FuncRegion* f = program.function_at(addr);
  if (f == nullptr) return -1;
  return static_cast<int>(f - program.functions.data());
}

namespace {

/// Iterative Tarjan SCC over the call graph.  Emission order is reverse
/// topological on the condensation: every SCC pops only after all SCCs it
/// reaches — exactly the bottom-up order the summary pass wants.
void compute_sccs(CallGraph& cg) {
  const int n = static_cast<int>(cg.nodes.size());
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;
  int next_scc = 0;

  struct Frame {
    int node;
    size_t edge;
  };
  std::vector<Frame> work;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) continue;
    work.push_back({root, 0});
    while (!work.empty()) {
      Frame& f = work.back();
      const size_t un = static_cast<size_t>(f.node);
      if (f.edge == 0) {
        index[un] = low[un] = next_index++;
        stack.push_back(f.node);
        on_stack[un] = true;
      }
      bool descended = false;
      while (f.edge < cg.nodes[un].calls.size()) {
        const CallEdge& e = cg.edges[static_cast<size_t>(
            cg.nodes[un].calls[f.edge])];
        ++f.edge;
        if (e.callee < 0) continue;
        const size_t uc = static_cast<size_t>(e.callee);
        if (index[uc] == -1) {
          work.push_back({e.callee, 0});
          descended = true;
          break;
        }
        if (on_stack[uc]) low[un] = std::min(low[un], index[uc]);
      }
      if (descended) continue;
      if (low[un] == index[un]) {
        std::vector<int> members;
        int m = -1;
        do {
          m = stack.back();
          stack.pop_back();
          on_stack[static_cast<size_t>(m)] = false;
          cg.nodes[static_cast<size_t>(m)].scc = next_scc;
          members.push_back(m);
        } while (m != f.node);
        ++next_scc;
        // Members of one cycle stay adjacent in the bottom-up order.
        for (auto it = members.rbegin(); it != members.rend(); ++it)
          cg.bottom_up.push_back(*it);
        if (members.size() > 1)
          for (int mem : members)
            cg.nodes[static_cast<size_t>(mem)].recursive = true;
      }
      work.pop_back();
      if (!work.empty()) {
        const size_t up = static_cast<size_t>(work.back().node);
        low[up] = std::min(low[up], low[un]);
      }
    }
  }
}

void mark_address_taken(const elf::ElfFile& exe, const Program& program,
                        const FuncAnalyses& fa, CallGraph& cg) {
  auto mark = [&](uint32_t addr) {
    const int node = cg.node_at(program, addr);
    if (node >= 0 && cg.nodes[static_cast<size_t>(node)].func->addr == addr)
      cg.nodes[static_cast<size_t>(node)].address_taken = true;
  };
  // Function entry addresses stored as words in allocatable data.
  for (const elf::Section& s : exe.sections) {
    if ((s.flags & elf::SHF_ALLOC) == 0 || s.type == elf::SHT_NOBITS) continue;
    if ((s.flags & elf::SHF_EXECINSTR) != 0) continue;
    for (size_t off = 0; off + 4 <= s.data.size(); off += 4) {
      const uint32_t w = static_cast<uint32_t>(s.data[off]) |
                         (static_cast<uint32_t>(s.data[off + 1]) << 8) |
                         (static_cast<uint32_t>(s.data[off + 2]) << 16) |
                         (static_cast<uint32_t>(s.data[off + 3]) << 24);
      mark(w);
    }
  }
  // Function entry addresses held in a register or tracked stack slot at any
  // block boundary (an LA-materialized pointer that escapes its block).
  for (const auto& [addr, a] : fa) {
    (void)addr;
    for (const AbsState& st : a.values.block_in) {
      if (!st.reachable) continue;
      for (const ValueRange& v : st.regs)
        if (v.is_constant() && v.lo >= program.text_addr && v.lo < program.text_end)
          mark(static_cast<uint32_t>(v.lo));
      for (const auto& [off, v] : st.slots) {
        (void)off;
        if (v.is_constant() && v.lo >= program.text_addr && v.lo < program.text_end)
          mark(static_cast<uint32_t>(v.lo));
      }
    }
  }
}

} // namespace

CallGraph build_callgraph(const elf::ElfFile& exe, const Program& program,
                          const FuncAnalyses& fa) {
  CallGraph cg;
  cg.nodes.resize(program.functions.size());
  for (size_t i = 0; i < program.functions.size(); ++i)
    cg.nodes[i].func = &program.functions[i];
  cg.entry = cg.node_at(program, program.entry);

  auto add_edge = [&](int caller, uint32_t site, uint32_t target,
                      CallKind kind, bool tail) {
    CallEdge e;
    e.site = site;
    e.caller = caller;
    e.callee = cg.node_at(program, target);
    e.target = target;
    e.kind = kind;
    e.tail = tail;
    const int id = static_cast<int>(cg.edges.size());
    cg.edges.push_back(e);
    cg.nodes[static_cast<size_t>(caller)].calls.push_back(id);
    if (e.callee >= 0)
      cg.nodes[static_cast<size_t>(e.callee)].callers.push_back(id);
  };

  for (size_t i = 0; i < program.functions.size(); ++i) {
    const FuncRegion& func = program.functions[i];
    const auto it = fa.find(func.addr);
    if (it == fa.end()) continue;
    const FuncAnalysis& a = it->second;
    const int caller = static_cast<int>(i);

    for (const BasicBlock& b : a.cfg.blocks) {
      for (const StaticInstr* instr : b.instrs) {
        if (instr->is_ret) continue;
        const bool is_jump = !instr->is_call && instr->has_indirect_target;
        if (instr->is_call && instr->has_target) {
          add_edge(caller, instr->addr, instr->target, CallKind::Direct,
                   /*tail=*/false);
        } else if (instr->has_target && !instr->is_call &&
                   !func.contains(instr->target)) {
          // Direct branch leaving the function region: a tail transfer.
          add_edge(caller, instr->addr, instr->target, CallKind::Direct,
                   /*tail=*/true);
        } else if ((instr->is_call && instr->has_indirect_target) || is_jump) {
          const IndirectResolution r =
              resolve_indirect(exe, program, a, *instr);
          if (!r.resolved) {
            cg.nodes[static_cast<size_t>(caller)].has_unresolved_call = true;
            cg.unresolved_sites.push_back(instr->addr);
            continue;
          }
          for (uint32_t t : r.targets) {
            if (is_jump && func.contains(t))
              continue; // computed intra-function goto, not a call
            add_edge(caller, instr->addr, t,
                     r.via_table ? CallKind::Table : CallKind::Indirect,
                     /*tail=*/is_jump);
          }
        }
      }
    }
  }

  // Reachability from the entry function along resolved edges.
  if (cg.entry >= 0) {
    std::vector<int> work{cg.entry};
    cg.nodes[static_cast<size_t>(cg.entry)].reachable = true;
    while (!work.empty()) {
      const int n = work.back();
      work.pop_back();
      for (int eid : cg.nodes[static_cast<size_t>(n)].calls) {
        const CallEdge& e = cg.edges[static_cast<size_t>(eid)];
        if (e.callee < 0) continue;
        CgNode& callee = cg.nodes[static_cast<size_t>(e.callee)];
        if (callee.reachable) continue;
        callee.reachable = true;
        work.push_back(e.callee);
      }
    }
  }

  compute_sccs(cg);
  for (const CallEdge& e : cg.edges) // direct self-recursion: a 1-node cycle
    if (e.callee >= 0 && e.callee == e.caller)
      cg.nodes[static_cast<size_t>(e.caller)].recursive = true;
  mark_address_taken(exe, program, fa, cg);
  return cg;
}

} // namespace ksim::analysis
