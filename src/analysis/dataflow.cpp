#include "analysis/dataflow.h"

#include "isa/kisa.h"

namespace ksim::analysis {
namespace {

constexpr RegMask bit(unsigned r) { return 1u << r; }

constexpr RegMask range(unsigned lo, unsigned hi) { // inclusive
  RegMask m = 0;
  for (unsigned r = lo; r <= hi; ++r) m |= bit(r);
  return m;
}

// ABI register classes (see isa::abi).
constexpr RegMask kZeroMask = bit(isa::abi::kZero);
constexpr RegMask kArgMask =
    range(isa::abi::kArg0, isa::abi::kArg0 + isa::abi::kNumArgRegs - 1);
constexpr RegMask kCalleeSavedMask =
    range(isa::abi::kFirstCalleeSaved, isa::abi::kNumRegs - 1);
/// Destroyed by a call: link register, scratch, argument registers except
/// the return value, and the caller-saved temporaries.
constexpr RegMask kCallClobberMask =
    (bit(isa::abi::kRa) | bit(isa::abi::kTmp) |
     range(isa::abi::kArg0, isa::abi::kFirstCalleeSaved - 1)) &
    ~bit(isa::abi::kArg0);

} // namespace

InstrUseDef instr_use_def(const StaticInstr& instr) {
  return instr_use_def(instr, CallEffectsFn{});
}

InstrUseDef instr_use_def(const StaticInstr& instr,
                          const CallEffectsFn& effects) {
  InstrUseDef ud;
  for (int s = 0; s < instr.num_ops; ++s) {
    const StaticOp& op = instr.ops[s];
    const isa::OpInfo& info = *op.info;
    ud.use |= isa::op_src_mask(info, op.rd, op.ra, op.rb);
    if (info.ra_is_src) ud.explicit_use |= bit(op.ra & 31u);
    if (info.rb_is_src) ud.explicit_use |= bit(op.rb & 31u);
    if (info.rd_is_src) ud.explicit_use |= bit(op.rd & 31u);
    ud.def |= isa::op_dst_mask(info, op.rd);
  }
  if (instr.is_call) {
    const CallEffects* ce = effects ? effects(instr) : nullptr;
    if (ce != nullptr) {
      ud.use |= ce->use;
      ud.def |= ce->def;
      ud.clobber = ce->clobber & ~ud.def;
    } else {
      // ABI fallback: the callee may read its arguments and the stack
      // pointer, returns a value in the first argument register and may
      // destroy every caller-saved register.
      ud.use |= kArgMask | bit(isa::abi::kSp);
      ud.clobber = kCallClobberMask;
      ud.def |= bit(isa::abi::kArg0);
    }
  }
  ud.use &= ~kZeroMask;
  ud.explicit_use &= ~kZeroMask;
  return ud;
}

RegMask abi_entry_defined(bool is_program_entry) {
  if (is_program_entry) return kZeroMask;
  return kZeroMask | bit(isa::abi::kRa) | bit(isa::abi::kSp) | kArgMask |
         kCalleeSavedMask;
}

RegMask abi_exit_live() {
  return bit(isa::abi::kArg0) | bit(isa::abi::kSp) | kCalleeSavedMask;
}

RegMask abi_call_clobber() { return kCallClobberMask; }

RegMask abi_arg_mask() { return kArgMask; }

std::vector<DefinedState> compute_defined(const Cfg& cfg, RegMask entry_defined) {
  return compute_defined(cfg, entry_defined, CallEffectsFn{});
}

std::vector<DefinedState> compute_defined(const Cfg& cfg, RegMask entry_defined,
                                          const CallEffectsFn& effects) {
  const size_t n = cfg.blocks.size();
  std::vector<DefinedState> st(n);
  constexpr RegMask kAll = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    // Top of the respective lattices, so unprocessed predecessors (e.g. loop
    // back edges on the first sweep) do not weaken the meet.
    st[i].must_in = st[i].must_out = kAll;
    st[i].may_in = st[i].may_out = 0;
  }
  if (n == 0) return st;
  st[0].must_in = st[0].may_in = entry_defined;

  auto transfer = [&effects](const BasicBlock& b, RegMask in) {
    for (const StaticInstr* instr : b.instrs) {
      const InstrUseDef ud = instr_use_def(*instr, effects);
      in = (in & ~ud.clobber) | ud.def;
    }
    return in;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int id : cfg.rpo) {
      BasicBlock const& b = cfg.blocks[static_cast<size_t>(id)];
      DefinedState& s = st[static_cast<size_t>(id)];
      if (id != 0) {
        RegMask must = kAll, may = 0;
        for (int p : b.preds) {
          must &= st[static_cast<size_t>(p)].must_out;
          may |= st[static_cast<size_t>(p)].may_out;
        }
        if (!b.preds.empty()) {
          s.must_in = must;
          s.may_in = may;
        }
      }
      const RegMask must_out = transfer(b, s.must_in);
      const RegMask may_out = transfer(b, s.may_in);
      if (must_out != s.must_out || may_out != s.may_out) {
        s.must_out = must_out;
        s.may_out = may_out;
        changed = true;
      }
    }
  }
  return st;
}

std::vector<LivenessState> compute_liveness(const Cfg& cfg, RegMask exit_live) {
  return compute_liveness(cfg, exit_live, CallEffectsFn{});
}

std::vector<LivenessState> compute_liveness(const Cfg& cfg, RegMask exit_live,
                                            const CallEffectsFn& effects) {
  const size_t n = cfg.blocks.size();
  std::vector<LivenessState> st(n);
  if (n == 0) return st;

  // Block-level use (read before any write in the block) and def sets.
  // Call-site reads (the callee's live-in under `effects`, the argument
  // registers + sp under the ABI fallback) are part of instr_use_def.
  std::vector<RegMask> use(n, 0), def(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (const StaticInstr* instr : cfg.blocks[i].instrs) {
      const InstrUseDef ud = instr_use_def(*instr, effects);
      use[i] |= ud.use & ~def[i];
      def[i] |= ud.def | ud.clobber; // a clobbered value does not survive
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = cfg.rpo.rbegin(); it != cfg.rpo.rend(); ++it) {
      const size_t id = static_cast<size_t>(*it);
      const BasicBlock& b = cfg.blocks[id];
      RegMask out = b.succs.empty() ? exit_live : 0;
      for (int s : b.succs) out |= st[static_cast<size_t>(s)].live_in;
      const RegMask in = use[id] | (out & ~def[id]);
      if (in != st[id].live_in || out != st[id].live_out) {
        st[id].live_in = in;
        st[id].live_out = out;
        changed = true;
      }
    }
  }
  return st;
}

} // namespace ksim::analysis
