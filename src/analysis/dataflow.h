// Register dataflow over the per-function CFG: instruction-level use/def
// sets (with the paper's parallel-read bundle semantics, §V-B), an ABI-aware
// call-clobber model, definite-assignment analysis (must/may-defined on
// every/some path from the function entry) and classic backwards liveness.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/cfg.h"
#include "isa/reg_use.h"

namespace ksim::analysis {

using isa::RegMask;

/// Use/def sets of one instruction.  All slots of a bundle read their
/// sources before any slot writes (§V-B), so `use` is the union of the
/// slots' sources — including registers some other slot writes.
struct InstrUseDef {
  RegMask use = 0;
  /// Subset of `use` named by explicit operand fields.  The definite-
  /// assignment checker only reports these: implicit reads (e.g. SIMOP's
  /// view of all six argument registers) over-approximate what the
  /// operation actually consumes.
  RegMask explicit_use = 0;
  RegMask def = 0;
  /// Registers whose value is destroyed without being defined: the
  /// caller-saved registers at a call site (the callee may clobber them).
  RegMask clobber = 0;
};

InstrUseDef instr_use_def(const StaticInstr& instr);

/// Interprocedural refinement of one call site's register effect, derived
/// from the callee's summary (summaries.h): what the callee may read before
/// writing, what it writes on every return path, and what it may destroy
/// beyond that.
struct CallEffects {
  RegMask use = 0;
  RegMask def = 0;
  RegMask clobber = 0;
};

/// Returns the refined effect for a call instruction, or nullptr to fall
/// back to the ABI clobber model.  Only consulted for call sites.
using CallEffectsFn = std::function<const CallEffects*(const StaticInstr&)>;

/// Summary-aware variant: call sites with refined effects use them in place
/// of the ABI model.  Passing an empty function reproduces the plain
/// intraprocedural analyses.
InstrUseDef instr_use_def(const StaticInstr& instr,
                          const CallEffectsFn& effects);

/// Registers with a well-defined value at function entry under the software
/// ABI: zero, return address, stack pointer, the argument registers and the
/// callee-saved range.  The scratch register and the non-argument temporaries
/// hold garbage.  For `_start` (program entry) only the zero register is set.
RegMask abi_entry_defined(bool is_program_entry);

/// Per-block definite-assignment state.
struct DefinedState {
  RegMask must_in = 0;  ///< defined on *every* path reaching the block
  RegMask may_in = 0;   ///< defined on *some* path reaching the block
  RegMask must_out = 0;
  RegMask may_out = 0;
};

/// Forward definite-assignment analysis over `cfg`.
/// Result is indexed by block id; unreachable blocks get the entry state.
std::vector<DefinedState> compute_defined(const Cfg& cfg, RegMask entry_defined);
std::vector<DefinedState> compute_defined(const Cfg& cfg, RegMask entry_defined,
                                          const CallEffectsFn& effects);

/// Per-block liveness state (backwards may-analysis).
struct LivenessState {
  RegMask live_in = 0;
  RegMask live_out = 0;
};

/// Registers assumed live at every function exit (return value + the
/// callee-saved range + stack pointer, under the software ABI).
RegMask abi_exit_live();

/// Registers a call destroys under the software ABI when nothing is known
/// about the callee (link register, scratch and the caller-saved range,
/// excluding the return-value register which the call *defines*).
RegMask abi_call_clobber();

/// The argument registers (r4..r9 under the software ABI).
RegMask abi_arg_mask();

std::vector<LivenessState> compute_liveness(const Cfg& cfg, RegMask exit_live);
std::vector<LivenessState> compute_liveness(const Cfg& cfg, RegMask exit_live,
                                            const CallEffectsFn& effects);

} // namespace ksim::analysis
