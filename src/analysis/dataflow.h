// Register dataflow over the per-function CFG: instruction-level use/def
// sets (with the paper's parallel-read bundle semantics, §V-B), an ABI-aware
// call-clobber model, definite-assignment analysis (must/may-defined on
// every/some path from the function entry) and classic backwards liveness.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "isa/reg_use.h"

namespace ksim::analysis {

using isa::RegMask;

/// Use/def sets of one instruction.  All slots of a bundle read their
/// sources before any slot writes (§V-B), so `use` is the union of the
/// slots' sources — including registers some other slot writes.
struct InstrUseDef {
  RegMask use = 0;
  /// Subset of `use` named by explicit operand fields.  The definite-
  /// assignment checker only reports these: implicit reads (e.g. SIMOP's
  /// view of all six argument registers) over-approximate what the
  /// operation actually consumes.
  RegMask explicit_use = 0;
  RegMask def = 0;
  /// Registers whose value is destroyed without being defined: the
  /// caller-saved registers at a call site (the callee may clobber them).
  RegMask clobber = 0;
};

InstrUseDef instr_use_def(const StaticInstr& instr);

/// Registers with a well-defined value at function entry under the software
/// ABI: zero, return address, stack pointer, the argument registers and the
/// callee-saved range.  The scratch register and the non-argument temporaries
/// hold garbage.  For `_start` (program entry) only the zero register is set.
RegMask abi_entry_defined(bool is_program_entry);

/// Per-block definite-assignment state.
struct DefinedState {
  RegMask must_in = 0;  ///< defined on *every* path reaching the block
  RegMask may_in = 0;   ///< defined on *some* path reaching the block
  RegMask must_out = 0;
  RegMask may_out = 0;
};

/// Forward definite-assignment analysis over `cfg`.
/// Result is indexed by block id; unreachable blocks get the entry state.
std::vector<DefinedState> compute_defined(const Cfg& cfg, RegMask entry_defined);

/// Per-block liveness state (backwards may-analysis).
struct LivenessState {
  RegMask live_in = 0;
  RegMask live_out = 0;
};

/// Registers assumed live at every function exit (return value + the
/// callee-saved range + stack pointer, under the software ABI).
RegMask abi_exit_live();

std::vector<LivenessState> compute_liveness(const Cfg& cfg, RegMask exit_live);

} // namespace ksim::analysis
