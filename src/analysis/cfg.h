// Per-function control-flow graphs over the statically decoded program:
// basic blocks, predecessor/successor edges, reverse postorder and immediate
// dominators (Cooper/Harvey/Kennedy iterative algorithm).  The dataflow
// passes (dataflow.h) and checkers (checks.h) run on this representation.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/program.h"

namespace ksim::analysis {

struct BasicBlock {
  int id = 0;
  uint32_t start = 0; ///< address of the first instruction
  uint32_t end = 0;   ///< first address past the last instruction
  std::vector<const StaticInstr*> instrs; ///< in address order
  std::vector<int> succs; ///< block ids, deduplicated
  std::vector<int> preds;
  bool is_entry = false;
  /// Last instruction falls through past the end of the function region
  /// (no return/jump/halt before the region boundary).
  bool falls_off_end = false;
  /// Ends in a branch/tail-jump whose target lies outside the function.
  bool has_external_target = false;
};

/// The CFG of one function region.  blocks[0], when present, is the entry.
struct Cfg {
  const FuncRegion* func = nullptr;
  std::vector<BasicBlock> blocks;
  std::vector<int> rpo;  ///< block ids in reverse postorder from the entry
  std::vector<int> idom; ///< immediate dominator per block id; -1 = unreachable

  const BasicBlock* block_at(uint32_t addr) const;
  bool dominates(int a, int b) const;
};

/// Builds the CFG of `func` from the instructions decoded inside its region.
/// Instructions outside the region (shared tails etc.) are not included.
Cfg build_cfg(const Program& program, const FuncRegion& func);

/// Computes rpo and idom for `cfg` (no-op on an empty CFG).
void compute_dominators(Cfg& cfg);

} // namespace ksim::analysis
