// Static per-block ILP upper bound (klint's cross-check of the paper's
// §VI-A model).  For every basic block the dependence rules of the dynamic
// IlpModel — true register dependences, the branch boundary, the pessimistic
// store ordering, a fixed ideal memory delay — are applied to the block's
// operations with all register completion times zero at block entry.  The
// resulting ops/critical-path ratio is the best ILP any execution of that
// block can achieve under the §VI-A rules, so the dynamic measurement of a
// program can never exceed the maximum block bound along its hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"

namespace ksim::analysis {

struct BlockIlp {
  uint32_t addr = 0;       ///< block start address
  uint32_t ops = 0;        ///< operations in the block
  uint32_t critical_path = 0; ///< cycles of the longest dependence chain
  double bound() const {
    return critical_path == 0 ? 0.0
                              : static_cast<double>(ops) / critical_path;
  }
};

struct FuncIlp {
  std::string function;
  uint32_t blocks = 0;
  uint32_t ops = 0;
  uint32_t critical_path = 0; ///< sum over blocks
  double max_block_bound = 0.0;
  /// Σops / Σcritical-path: the ILP if every block executed equally often.
  double weighted_bound() const {
    return critical_path == 0 ? 0.0
                              : static_cast<double>(ops) / critical_path;
  }
  std::vector<BlockIlp> block_bounds;
};

/// Computes the static bound for every block of `cfg`.
/// `memory_delay` mirrors IlpModel's ideal memory latency (3 = L1).
FuncIlp compute_static_ilp(const Cfg& cfg, unsigned memory_delay = 3);

} // namespace ksim::analysis
