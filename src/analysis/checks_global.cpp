// Whole-program checkers: consume the call graph, the value-range results
// and the interprocedural summaries (built by run_lint) and report findings
// no per-function pass can see.
#include <algorithm>
#include <string_view>

#include "analysis/checks.h"
#include "support/strings.h"

namespace ksim::analysis {
namespace {

std::string func_name(const Program& program, uint32_t addr) {
  const FuncRegion* f = program.function_at(addr);
  return f == nullptr ? std::string() : f->name;
}

void add(std::vector<Finding>& out, Severity severity, std::string check,
         uint32_t addr, const Program& program, std::string message) {
  Finding f;
  f.severity = severity;
  f.check = std::move(check);
  f.addr = addr;
  f.function = func_name(program, addr);
  f.message = std::move(message);
  out.push_back(std::move(f));
}

bool sem_is(const isa::OpInfo& info, std::string_view name) {
  return info.def != nullptr && info.def->semantic == name;
}

unsigned access_bytes(const isa::OpInfo& info) {
  if (sem_is(info, "lw") || sem_is(info, "sw")) return 4;
  if (sem_is(info, "lh") || sem_is(info, "lhu") || sem_is(info, "sh")) return 2;
  return 1;
}

/// Findings on never-statically-reached functions are informational: the
/// decode of those regions is a guess (same convention as check_decode_issues).
Severity cap_speculative(const FuncRegion& func, Severity severity) {
  if (func.speculative && severity == Severity::Error) return Severity::Note;
  if (func.speculative && severity == Severity::Warning) return Severity::Note;
  return severity;
}

} // namespace

void check_memory_bounds(const WholeProgram& wp, std::vector<Finding>& out) {
  const Program& program = *wp.program;
  for (const FuncRegion& func : program.functions) {
    const auto it = wp.fa->find(func.addr);
    if (it == wp.fa->end()) continue;
    const FuncAnalysis& a = it->second;
    for (const BasicBlock& b : a.cfg.blocks) {
      if (!a.values.block_in[static_cast<size_t>(b.id)].reachable) continue;
      for (const StaticInstr* instr : b.instrs) {
        for (int s = 0; s < instr->num_ops; ++s) {
          const StaticOp& op = instr->ops[s];
          const isa::OpInfo& info = *op.info;
          if (!info.is_load() && !info.is_store()) continue;
          const ValueRange ea = effective_address(program, a.values, *instr, op);
          if (!ea.is_plain_range()) continue; // unbounded: nothing provable
          const unsigned bytes = access_bytes(info);
          const char* what = info.is_store() ? "store" : "load";
          if (ea.lo >= wp.ram_size || ea.hi < 0) {
            add(out, cap_speculative(func, Severity::Error), "oob-access",
                instr->addr, program,
                strf("%s at %s is outside the %u-byte address space", what,
                     ea.str().c_str(), wp.ram_size));
          } else if (ea.lo < 0 ||
                     ea.hi + static_cast<int64_t>(bytes) > wp.ram_size) {
            add(out, cap_speculative(func, Severity::Warning), "oob-access",
                instr->addr, program,
                strf("%s at %s may leave the %u-byte address space", what,
                     ea.str().c_str(), wp.ram_size));
          }
          if (info.is_store() &&
              ea.hi + static_cast<int64_t>(bytes) > program.text_addr &&
              ea.lo < program.text_end) {
            add(out, cap_speculative(func, Severity::Warning),
                "self-modifying-store", instr->addr, program,
                strf("store at %s may overwrite the text section "
                     "[%s, %s)",
                     ea.str().c_str(), hex32(program.text_addr).c_str(),
                     hex32(program.text_end).c_str()));
          }
        }
      }
    }
  }
}

void check_stack_depth(const WholeProgram& wp, std::vector<Finding>& out) {
  const Program& program = *wp.program;
  const CallGraph& cg = *wp.cg;
  if (cg.entry < 0) return;
  const CgNode& entry = cg.nodes[static_cast<size_t>(cg.entry)];

  // The entry function installs the stack pointer itself, so its "frame" is
  // the budgeted region; the chain of interest starts at its callees.
  bool known = !entry.recursive && !entry.has_unresolved_call;
  int64_t deepest = 0;
  for (int eid : entry.calls) {
    const CallEdge& e = cg.edges[static_cast<size_t>(eid)];
    if (e.callee < 0) {
      known = false;
      continue;
    }
    const CgNode& callee = cg.nodes[static_cast<size_t>(e.callee)];
    if (callee.scc == entry.scc) {
      known = false;
      continue;
    }
    const auto it = wp.summaries->find(callee.func->addr);
    if (it == wp.summaries->end() || !it->second.depth_known) {
      known = false;
      continue;
    }
    deepest = std::max(deepest, it->second.max_depth);
  }

  if (known) {
    if (deepest > wp.stack_budget) {
      add(out, Severity::Error, "stack-overflow", program.entry, program,
          strf("worst-case stack depth %lld bytes exceeds the %u-byte "
               "stack region",
               static_cast<long long>(deepest), wp.stack_budget));
    }
    return;
  }
  // Name one reason the bound is open, preferring recursion (the common and
  // most actionable cause).
  for (const CgNode& node : cg.nodes) {
    if (node.recursive && node.reachable) {
      add(out, Severity::Note, "stack-depth-unknown", node.func->addr, program,
          strf("stack depth not statically bounded: '%s' is recursive",
               node.func->name.c_str()));
      return;
    }
  }
  if (!cg.unresolved_sites.empty()) {
    add(out, Severity::Note, "stack-depth-unknown", cg.unresolved_sites[0],
        program,
        "stack depth not statically bounded: unresolved indirect call");
  }
}

void check_dead_functions(const WholeProgram& wp, std::vector<Finding>& out) {
  const Program& program = *wp.program;
  const CallGraph& cg = *wp.cg;
  if (cg.entry < 0) return;
  const bool have_unresolved = !cg.unresolved_sites.empty();
  for (const CgNode& node : cg.nodes) {
    if (node.reachable) continue;
    // While any indirect site is unresolved, an address-taken function may
    // still be called through it.
    if (have_unresolved && node.address_taken) continue;
    add(out, Severity::Note, "dead-function", node.func->addr, program,
        strf("'%s' is never called from the entry point",
             node.func->name.c_str()));
  }
}

void check_recursion_cycles(const WholeProgram& wp, std::vector<Finding>& out) {
  const Program& program = *wp.program;
  const CallGraph& cg = *wp.cg;
  // One finding per cycle, anchored at its lowest-address member.
  std::map<int, std::vector<const CgNode*>> cycles;
  for (const CgNode& node : cg.nodes)
    if (node.recursive) cycles[node.scc].push_back(&node);
  for (auto& [scc, members] : cycles) {
    (void)scc;
    std::sort(members.begin(), members.end(),
              [](const CgNode* a, const CgNode* b) {
                return a->func->addr < b->func->addr;
              });
    std::string names;
    for (const CgNode* m : members) {
      if (!names.empty()) names += " -> ";
      names += m->func->name;
    }
    if (members.size() > 1) names += " -> " + members.front()->func->name;
    add(out, Severity::Note, "recursion-cycle", members.front()->func->addr,
        program,
        members.size() == 1 ? strf("'%s' calls itself", names.c_str())
                            : strf("call cycle: %s", names.c_str()));
  }
}

void check_isa_returns(const WholeProgram& wp, std::vector<Finding>& out) {
  const Program& program = *wp.program;
  const CallGraph& cg = *wp.cg;
  for (const CallEdge& e : cg.edges) {
    if (e.tail || e.callee < 0) continue;
    const auto sit = wp.summaries->find(
        cg.nodes[static_cast<size_t>(e.callee)].func->addr);
    if (sit == wp.summaries->end()) continue;
    const FuncSummary& callee = sit->second;
    if (!callee.returns || callee.exit_isa_mask == 0) continue;
    const StaticInstr* call = program.instr_at(e.site);
    if (call == nullptr) continue;
    // The decoder assumed this ISA for the code after the call; if no return
    // path of the callee can be in it, the continuation will mis-decode.
    const uint32_t expected = 1u << static_cast<unsigned>(call->isa_after);
    if ((callee.exit_isa_mask & expected) != 0) continue;
    const FuncRegion* caller_func = program.function_at(e.site);
    const Severity sev =
        caller_func != nullptr && caller_func->speculative ? Severity::Note
                                                           : Severity::Error;
    const isa::IsaInfo* want = program.set->find_isa(call->isa_after);
    std::string exit_names;
    for (int id = 0; id <= program.set->max_isa_id(); ++id) {
      if ((callee.exit_isa_mask & (1u << static_cast<unsigned>(id))) == 0)
        continue;
      const isa::IsaInfo* info = program.set->find_isa(id);
      if (!exit_names.empty()) exit_names += ", ";
      exit_names += info != nullptr ? info->name : std::to_string(id);
    }
    add(out, sev, "isa-return", e.site, program,
        strf("'%s' returns with ISA %s active but the code after the call "
             "was decoded as %s",
             cg.nodes[static_cast<size_t>(e.callee)].func->name.c_str(),
             exit_names.c_str(),
             want != nullptr ? want->name.c_str() : "?"));
  }
}

} // namespace ksim::analysis
