// Static program decoding for klint (src/analysis/).
//
// The simulator decodes lazily along the executed path; the static analyzer
// instead walks *every* statically visible control-flow path from the entry
// point, tracking the active ISA across SWITCHTARGET operations exactly as
// the reconfigurable hardware would (paper §V-D).  The result is a map from
// text addresses to decoded instructions annotated with static control-flow
// facts, plus the set of decode problems encountered on the way — the raw
// material for the CFG/dataflow passes in cfg.h / dataflow.h / checks.h.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "elf/elf.h"
#include "isa/exec.h"
#include "isa/optable.h"

namespace ksim::analysis {

/// One statically decoded operation (slot of an instruction).
struct StaticOp {
  const isa::OpInfo* info = nullptr;
  uint32_t word = 0;
  uint8_t rd = 0;
  uint8_t ra = 0;
  uint8_t rb = 0;
  int32_t imm = 0;
};

/// One statically decoded instruction (stop-bit delimited group).
struct StaticInstr {
  uint32_t addr = 0;
  uint8_t num_ops = 0;
  uint8_t size_bytes = 0;
  int16_t isa_id = 0;        ///< ISA the instruction was first decoded under
  uint32_t inbound_isas = 0; ///< bit i set: reached while ISA id i was active
  StaticOp ops[isa::kMaxSlots];

  // Static control flow (derived from the branch-classification metadata of
  // the operation tables).
  bool has_fallthrough = true;      ///< may continue at addr + size_bytes
  bool is_cond_branch = false;
  bool is_call = false;             ///< JAL/JALR: control returns to fallthrough
  bool is_ret = false;              ///< JR via the link register
  bool is_halt = false;
  bool has_indirect_target = false; ///< register-indirect transfer, target unknown
  bool has_target = false;
  uint32_t target = 0;              ///< static branch/call target if has_target
  int isa_after = 0;                ///< active ISA for the fallthrough successor

  uint32_t end() const { return addr + size_bytes; }
};

/// Why the static decoder could not continue at an address.
enum class DecodeIssueKind {
  Undecodable,    ///< no operation of the inbound ISA matches the word
  Oversubscribed, ///< no stop bit within the inbound ISA's issue width
  IsaConflict,    ///< address decodes differently under two inbound ISAs
  UnknownIsa,     ///< SWITCHTARGET to an id the architecture does not define
  BadAddress,     ///< control leaves the text section
};

struct DecodeIssue {
  DecodeIssueKind kind = DecodeIssueKind::Undecodable;
  uint32_t addr = 0;      ///< where decoding failed
  uint32_t from_addr = 0; ///< instruction that transferred control here
  int isa_id = 0;         ///< ISA active on arrival
  int other_isa_id = 0;   ///< IsaConflict: the ISA of the earlier decode
  bool speculative = false; ///< found while decoding a statically unreached function
  std::string detail;
};

/// A function region from the executable's symbol table, annotated with what
/// the traversal learned about it.
struct FuncRegion {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0;
  bool reached = false;     ///< reached by the traversal from the entry point
  bool speculative = false; ///< only decoded by seeding its entry (never called)
  bool has_indirect_jump = false; ///< contains a non-return register-indirect jump
  int entry_isa_id = 0;     ///< ISA active when its entry was first decoded

  uint32_t end() const { return addr + size; }
  bool contains(uint32_t a) const { return a >= addr && a < end(); }
};

/// The statically decoded program.
struct Program {
  const isa::IsaSet* set = nullptr;
  uint32_t entry = 0;
  int entry_isa = 0;
  uint32_t text_addr = 0;
  uint32_t text_end = 0;

  /// Decoded instructions keyed by address.  Instructions reached under
  /// several ISAs with identical decodings appear once (see inbound_isas).
  std::map<uint32_t, StaticInstr> instrs;
  std::vector<FuncRegion> functions; ///< sorted by address
  std::vector<DecodeIssue> issues;

  const FuncRegion* function_at(uint32_t addr) const;
  const FuncRegion* function_named(std::string_view name) const;
  const StaticInstr* instr_at(uint32_t addr) const;
};

/// Decodes `exe` (a linked executable) from its entry point, then seeds any
/// function symbols the traversal never reached so library stubs and other
/// unreferenced code are analyzed too.  Throws ksim::Error if `exe` is not
/// an executable with a text section.
Program decode_program(const elf::ElfFile& exe, const isa::IsaSet& set);

} // namespace ksim::analysis
