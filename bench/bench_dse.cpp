// kdse throughput: design-space-exploration sweeps over the memory-geometry
// axis, measured three ways — bare (no journal), journaled (every finished
// point CRC'd and flushed to the sweep journal), and a full resume (every
// point pre-filled from the journal, no simulation at all).  The journal
// overhead is the price of crash-resumability; the resume time is what a
// `ksim sweep --resume` of a finished directory costs.
#include <algorithm>
#include <filesystem>
#include <thread>

#include "api/sweep.h"
#include "api/sweep_journal.h"
#include "bench_util.h"

using namespace ksim;
using namespace ksim::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("dse", args);
  header("kdse: geometry-axis sweep throughput, journal overhead, resume");

  // An L1 capacity ladder (sets doubling) is the classic first DSE question;
  // quick mode keeps four rungs so CI finishes in seconds.
  api::SweepSpec spec;
  spec.workloads = {"dct"};
  spec.isas = args.quick ? std::vector<std::string>{"RISC", "VLIW4"}
                         : std::vector<std::string>{"RISC", "VLIW2", "VLIW4"};
  spec.models = {"doe"};
  spec.geometries.clear();
  for (uint32_t sets = 8; sets <= (args.quick ? 64u : 256u); sets *= 2) {
    cycle::MemGeometry g;
    g.l1.sets = sets;
    spec.geometries.push_back(g);
  }
  spec.base.echo_output = false;
  spec.threads =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  spec.validate();

  const size_t total = spec.workloads.size() * spec.isas.size() *
                       spec.models.size() * spec.geometries.size();
  std::printf("grid: %zu workloads x %zu ISAs x %zu models x %zu geometries"
              " = %zu points, %d threads\n\n",
              spec.workloads.size(), spec.isas.size(), spec.models.size(),
              spec.geometries.size(), total, spec.threads);
  json.set("points", static_cast<uint64_t>(total));
  json.set("geometries", static_cast<uint64_t>(spec.geometries.size()));
  json.set("threads", spec.threads);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "ksim_bench_dse").string();
  const int repeats = args.quick ? 2 : 3;

  double bare_s = 1e30;
  for (int r = 0; r < repeats; ++r) {
    const api::SweepResult result = api::run_sweep(spec);
    check(result.failed == 0, "bare sweep points failed under bench");
    bare_s = std::min(bare_s, result.wall_seconds);
  }
  const double bare_pps = static_cast<double>(total) / bare_s;
  std::printf("bare:      %7.3f s  %7.2f points/s\n", bare_s, bare_pps);
  json.set("bare.wall_s", bare_s);
  json.set("bare.points_per_s", bare_pps);

  double journal_s = 1e30;
  for (int r = 0; r < repeats; ++r) {
    std::filesystem::remove_all(dir);
    api::SweepJournal journal =
        api::SweepJournal::create(dir, api::render_sweep_manifest(spec));
    const api::SweepResult result = api::run_sweep(spec, {}, &journal);
    check(result.failed == 0, "journaled sweep points failed under bench");
    journal_s = std::min(journal_s, result.wall_seconds);
  }
  const double journal_pps = static_cast<double>(total) / journal_s;
  const double overhead_pct = 100.0 * (journal_s - bare_s) / bare_s;
  std::printf("journaled: %7.3f s  %7.2f points/s  (%+.1f%% vs bare)\n",
              journal_s, journal_pps, overhead_pct);
  json.set("journal.wall_s", journal_s);
  json.set("journal.points_per_s", journal_pps);
  json.set("journal.overhead_pct", overhead_pct);

  // Resume of the finished directory: every point comes back from the
  // journal; this is pure decode + render work.
  double resume_s = 1e30;
  for (int r = 0; r < repeats; ++r) {
    api::SweepJournal journal = api::SweepJournal::resume(dir);
    const api::SweepResult result = api::run_sweep(spec, {}, &journal);
    check(result.resumed == total, "resume re-ran already-journaled points");
    check(result.failed == 0, "resumed sweep points failed under bench");
    resume_s = std::min(resume_s, result.wall_seconds);
  }
  std::printf("resume:    %7.3f s  (all %zu points pre-filled)\n", resume_s,
              total);
  json.set("resume.wall_s", resume_s);
  std::filesystem::remove_all(dir);

  json.write();
  return 0;
}
