// ksimd service load generator: N concurrent client connections each submit
// M jobs back-to-back against an in-process daemon and wait for the streamed
// ksim.job.done event.  Reports service throughput (jobs/s) and per-job
// submit->done latency percentiles; ci.sh stores the --quick numbers as the
// checked-in BENCH_ksimd.json trajectory.
//
//   --quick   4 clients x 4 jobs   (CI smoke)
//   default   8 clients x 8 jobs
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ksimd/protocol.h"
#include "ksimd/server.h"
#include "support/error.h"

namespace ksim::bench {
namespace {

api::RunConfig job_config() {
  api::RunConfig cfg;
  cfg.workload = "dct";
  cfg.isa = "RISC";
  cfg.model = "doe";
  cfg.use_jit = false; // interpreter-bound: stable latencies across hosts
  return cfg;
}

/// One client connection: submits `jobs` sequentially, waiting for each
/// done event before the next submit.  Appends submit->done milliseconds.
void client_main(uint16_t port, int jobs, const std::string& tenant,
                 std::vector<double>* latencies_ms) {
  ksimd::Client client("127.0.0.1", port);
  for (int j = 0; j < jobs; ++j) {
    ksimd::SubmitRequest req;
    req.tenant = tenant;
    req.config = job_config();
    const auto t0 = std::chrono::steady_clock::now();
    client.send_line(ksimd::encode(req));
    for (;;) {
      const auto msg = client.read_message();
      check(msg.has_value(), "daemon closed the connection mid-job");
      if (const auto* rej = std::get_if<ksimd::Rejected>(&*msg))
        throw ksim::Error("bench job rejected: " + rej->error);
      if (const auto* done = std::get_if<ksimd::Done>(&*msg)) {
        check(done->state == ksimd::JobState::Done && done->exit_code == 0,
              "bench job did not complete cleanly");
        break;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    latencies_ms->push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
}

double percentile(std::vector<double> sorted, double p) {
  const size_t i = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  return sorted[std::min(i, sorted.size() - 1)];
}

int bench_main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("ksimd", args);

  const int clients = args.quick ? 4 : 8;
  const int jobs_per_client = args.quick ? 4 : 8;
  ksimd::SchedulerOptions sched;
  sched.workers = 4;
  sched.queue_capacity = static_cast<size_t>(clients) * jobs_per_client + 8;
  ksimd::Server server(sched, {});
  std::thread server_thread([&server] { server.run(); });

  header("ksimd service throughput");
  std::printf("%d clients x %d jobs on %zu workers (dct@RISC, doe model)\n",
              clients, jobs_per_client, sched.workers);

  std::vector<std::vector<double>> latencies(clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c)
    threads.emplace_back(client_main, server.port(), jobs_per_client,
                         "bench-" + std::to_string(c), &latencies[c]);
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  const api::ImageCache::Stats cache = server.scheduler().image_cache_stats();
  server.request_stop(/*drain=*/true);
  server_thread.join();

  std::vector<double> all;
  for (const std::vector<double>& l : latencies)
    all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());
  check(all.size() ==
            static_cast<size_t>(clients) * static_cast<size_t>(jobs_per_client),
        "lost jobs");

  const double wall_s = std::chrono::duration<double>(t1 - t0).count();
  const double jobs_per_s = static_cast<double>(all.size()) / wall_s;
  const double p50 = percentile(all, 0.50);
  const double p99 = percentile(all, 0.99);
  std::printf("  %zu jobs in %.3f s = %.1f jobs/s\n", all.size(), wall_s,
              jobs_per_s);
  std::printf("  latency p50 %.2f ms, p99 %.2f ms\n", p50, p99);
  std::printf("  image cache: %llu hits, %llu builds\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));

  json.set("clients", clients);
  json.set("jobs_per_client", jobs_per_client);
  json.set("workers", static_cast<uint64_t>(sched.workers));
  json.set("jobs", static_cast<uint64_t>(all.size()));
  json.set("wall_s", wall_s);
  json.set("jobs_per_s", jobs_per_s);
  json.set("latency.p50_ms", p50);
  json.set("latency.p99_ms", p99);
  json.set("image_cache.hits", cache.hits);
  json.set("image_cache.builds", cache.misses);
  json.write();
  return 0;
}

} // namespace
} // namespace ksim::bench

int main(int argc, char** argv) {
  try {
    return ksim::bench::bench_main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ksimd: %s\n", e.what());
    return 1;
  }
}
