// kckpt cost model: snapshot encode/restore latency, snapshot size, and the
// end-to-end runtime overhead of periodic on-disk checkpointing at several
// --checkpoint-every intervals.  The headline acceptance number is
// overhead_pct.every_10M — periodic snapshots every 10M instructions must
// stay well under 5% of straight-through runtime.
#include <filesystem>

#include "bench_util.h"
#include "ckpt/checkpoint.h"

using namespace ksim;
using namespace ksim::bench;

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("ckpt", args);
  header("kckpt: checkpoint save/restore latency, size and runtime overhead");

  const workloads::Workload& w = workloads::by_name(args.quick ? "dct" : "cjpeg");
  const elf::ElfFile exe = workloads::build_workload(w, "RISC");
  const int repeats = args.quick ? 2 : 5;

  const workloads::RunOutcome full = workloads::run_executable(exe);
  const uint64_t total = full.stats.instructions;
  std::printf("workload %s (RISC), %llu instructions\n\n", w.name.c_str(),
              static_cast<unsigned long long>(total));
  json.set("workload", w.name);
  json.set("instructions", total);

  ckpt::RunRecord run;
  run.workload = w.name;
  run.elf_bytes = exe.serialize();

  // Snapshot encode latency + size at the midpoint of the run.
  sim::Simulator mid(isa::kisa(), sim::SimOptions{});
  mid.load(exe);
  mid.set_checkpoint_hook(total / 2, [](sim::Simulator&) { return true; });
  check(mid.run() == sim::StopReason::Checkpoint, "midpoint checkpoint not reached");
  ckpt::Participants parts;
  parts.sim = &mid;
  std::vector<uint8_t> snap;
  const double save_s =
      time_best([&] { snap = ckpt::encode_checkpoint(run, parts); }, repeats * 2);
  std::printf("save   %8.3f ms   snapshot %zu bytes (at %llu instructions)\n",
              save_s * 1e3, snap.size(),
              static_cast<unsigned long long>(mid.stats().instructions));
  json.set("save_ms", save_s * 1e3);
  json.set("snapshot_bytes", static_cast<uint64_t>(snap.size()));

  // Restore latency: parse + full apply, including the decode-cache and
  // superblock rebuild from the restored memory image.
  const double restore_s = time_best(
      [&] {
        sim::Simulator fresh(isa::kisa(), sim::SimOptions{});
        fresh.load(exe);
        ckpt::Participants p;
        p.sim = &fresh;
        ckpt::apply_checkpoint(ckpt::parse_checkpoint(snap), p);
      },
      repeats * 2);
  std::printf("restore %7.3f ms (parse + apply + decode-cache rebuild)\n\n",
              restore_s * 1e3);
  json.set("restore_ms", restore_s * 1e3);

  // End-to-end overhead of periodic snapshots written (atomically) to disk.
  const TimedRun straight = timed_run(exe, sim::SimOptions{}, {}, repeats);
  std::printf("straight-through: %.3f s (%.1f MIPS)\n", straight.seconds,
              straight.mips());
  json.set("straight_s", straight.seconds);
  json.set("straight_mips", straight.mips());

  const std::string dir = (fs::temp_directory_path() / "bench_kckpt").string();
  const struct {
    uint64_t every;
    const char* label;
  } intervals[] = {{200000, "200k"}, {1000000, "1M"}, {10000000, "10M"}};
  for (const auto& iv : intervals) {
    double best = 1e30;
    unsigned snapshots = 0;
    for (int i = 0; i < repeats; ++i) {
      fs::remove_all(dir);
      sim::Simulator s(isa::kisa(), sim::SimOptions{});
      s.load(exe);
      ckpt::CheckpointSink sink(dir, 3);
      ckpt::Participants p;
      p.sim = &s;
      s.set_checkpoint_hook(iv.every, [&](sim::Simulator&) {
        sink.write(run, p);
        return false;
      });
      const auto t0 = std::chrono::steady_clock::now();
      check(s.run() == sim::StopReason::Exited, "bench run did not finish");
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
      snapshots = sink.written();
    }
    const double overhead = 100.0 * (best - straight.seconds) / straight.seconds;
    std::printf("every %-5s %u snapshots, %.3f s, overhead %+.2f%%\n", iv.label,
                snapshots, best, overhead);
    json.set(std::string("snapshots.every_") + iv.label,
             static_cast<uint64_t>(snapshots));
    json.set(std::string("overhead_pct.every_") + iv.label, overhead);
  }
  fs::remove_all(dir);

  json.write();
  return 0;
}
