// Reproduces Figure 4: the theoretical ILP (cycle model of §VI-A, measured
// on the RISC instruction stream) compared against the operations per cycle
// actually achieved by VLIW processor instances of issue widths 1/2/4/6/8
// (DOE cycle model with the paper's memory hierarchy), for all applications.
//
// Expected shape (paper §VII-B): DCT and AES offer high theoretical ILP while
// FFT (recursive), cjpeg/djpeg and quicksort offer little; AES achieves only
// a fraction of its ILP because its working set exceeds the 2 KiB L1.
#include "bench_util.h"
#include "cycle/models.h"

using namespace ksim;
using namespace ksim::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("fig4_ilp", args);

  header("Figure 4: theoretical ILP vs achieved operations/cycle");

  std::printf("%-8s %6s | %8s %8s %8s %8s %8s | %8s\n", "app", "ILP", "RISC",
              "VLIW2", "VLIW4", "VLIW6", "VLIW8", "L1 miss");

  const char* widths[] = {"RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8"};
  for (const workloads::Workload& w : workloads::all()) {
    if (args.quick && w.name != "dct") continue;
    // Theoretical ILP on the RISC stream.
    cycle::IlpModel ilp;
    workloads::run_executable(workloads::build_workload(w, "RISC"), &ilp);

    double opc[5];
    double l1_miss_risc = 0;
    for (int i = 0; i < 5; ++i) {
      cycle::MemoryHierarchy memory;
      cycle::DoeModel doe(&memory);
      workloads::run_executable(workloads::build_workload(w, widths[i]), &doe);
      opc[i] = doe.ops_per_cycle();
      if (i == 0) l1_miss_risc = memory.l1().miss_rate();
    }
    std::printf("%-8s %6.2f | %8.3f %8.3f %8.3f %8.3f %8.3f | %7.1f%%\n",
                w.name.c_str(), ilp.ilp(), opc[0], opc[1], opc[2], opc[3], opc[4],
                100.0 * l1_miss_risc);
    json.set(w.name + ".ilp", ilp.ilp());
    for (int i = 0; i < 5; ++i)
      json.set(w.name + ".opc." + widths[i], opc[i]);
    json.set(w.name + ".l1_miss_risc", l1_miss_risc);
  }
  std::printf("\n(ILP: upper bound with unlimited resources and ideal 3-cycle"
              " memory;\n achieved: DOE model, L1 2KiB/4-way/3cy, L2 256KiB/6cy,"
              " memory 18cy, 1 L1 port)\n");
  json.write();
  return 0;
}
