// Reproduces Table I: average execution time per instruction of the
// simulator components (Execute, Cache Access, Detect & Decode, ILP, AIE,
// DOE, Memory Model), measured on the cjpeg application compiled for the
// RISC processor instance — derived from end-to-end timings by solving the
// same linear relations the paper uses (§VII-A).
#include <memory>

#include "bench_util.h"
#include "cycle/models.h"

using namespace ksim;
using namespace ksim::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("table1_components", args);
  const int repeats = args.quick ? 1 : 3;

  header("Table I: simulator component costs (cjpeg, RISC instance)");

  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("cjpeg"), "RISC");

  sim::SimOptions base;                    // cache + prediction (paper's config)
  base.use_superblocks = false;
  sim::SimOptions cache_only;
  cache_only.use_prediction = false;
  cache_only.use_superblocks = false;
  sim::SimOptions no_cache;
  no_cache.use_decode_cache = false;

  const TimedRun t_nocache = timed_run(exe, no_cache, {}, repeats);
  const TimedRun t_cache = timed_run(exe, cache_only, {}, repeats);
  const TimedRun t_pred = timed_run(exe, base, {}, repeats);

  cycle::MemoryHierarchy memory;
  auto with_model = [&](char kind, bool with_mem) {
    return timed_run(exe, base, [&, kind, with_mem]() -> cycle::CycleModel* {
      static std::unique_ptr<cycle::CycleModel> model;
      memory.reset();
      switch (kind) {
        case 'i': model = std::make_unique<cycle::IlpModel>(); break;
        case 'a':
          model = std::make_unique<cycle::AieModel>(with_mem ? &memory : nullptr);
          break;
        default:
          model = std::make_unique<cycle::DoeModel>(with_mem ? &memory : nullptr);
          break;
      }
      return model.get();
    }, repeats);
  };
  const TimedRun t_ilp = with_model('i', true);
  const TimedRun t_aie = with_model('a', true);
  const TimedRun t_aie_nomem = with_model('a', false);
  const TimedRun t_doe = with_model('d', true);

  // Solve the linear relations (paper: "by solving a system of linear
  // equations"):
  //   t_nocache = exec + detect&decode
  //   t_cache   = exec + lookup
  //   t_pred    = exec + (1 - p) * lookup        (p: prediction hit rate)
  const double p = t_pred.stats.lookup_avoidance();
  const double lookup = (t_cache.ns_per_instr() - t_pred.ns_per_instr()) / p;
  const double exec = t_cache.ns_per_instr() - lookup;
  const double detect = t_nocache.ns_per_instr() - exec;

  std::printf("%-28s %14s\n", "Simulator component", "ns/instruction");
  std::printf("%-28s %14.1f\n", "Execute (1 operation)", exec);
  std::printf("%-28s %14.1f\n", "Cache Access", lookup);
  std::printf("%-28s %14.1f\n", "Detect & Decode", detect);
  std::printf("%-28s %14.1f\n", "ILP",
              t_ilp.ns_per_instr() - t_pred.ns_per_instr());
  std::printf("%-28s %14.1f\n", "AIE (including memory)",
              t_aie.ns_per_instr() - t_pred.ns_per_instr());
  std::printf("%-28s %14.1f\n", "DOE (including memory)",
              t_doe.ns_per_instr() - t_pred.ns_per_instr());
  std::printf("%-28s %14.1f\n", "Memory Model",
              t_aie.ns_per_instr() - t_aie_nomem.ns_per_instr());

  std::printf("\n(raw: no-cache %.1f ns, cache %.1f ns, cache+pred %.1f ns;"
              " prediction hit rate %.1f%%)\n",
              t_nocache.ns_per_instr(), t_cache.ns_per_instr(),
              t_pred.ns_per_instr(), 100.0 * p);

  json.set("execute_ns", exec);
  json.set("cache_access_ns", lookup);
  json.set("detect_decode_ns", detect);
  json.set("ilp_ns", t_ilp.ns_per_instr() - t_pred.ns_per_instr());
  json.set("aie_ns", t_aie.ns_per_instr() - t_pred.ns_per_instr());
  json.set("doe_ns", t_doe.ns_per_instr() - t_pred.ns_per_instr());
  json.set("memory_model_ns", t_aie.ns_per_instr() - t_aie_nomem.ns_per_instr());
  json.write();
  return 0;
}
