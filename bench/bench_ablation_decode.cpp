// Ablation A: decode-cache and instruction-prediction effectiveness across
// all workloads (the paper reports the cjpeg numbers in §VII-A; this sweep
// shows the mechanism is workload-independent because of program locality).
#include "bench_util.h"

using namespace ksim;
using namespace ksim::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("ablation_decode", args);

  header("Ablation: decode cache & instruction prediction per workload (RISC)");

  std::printf("%-8s %14s %10s %14s %14s\n", "app", "instructions", "decodes",
              "decode avoid", "lookup avoid");
  for (const workloads::Workload& w : workloads::all()) {
    const workloads::RunOutcome r =
        workloads::run_executable(workloads::build_workload(w, "RISC"));
    std::printf("%-8s %14llu %10llu %13.4f%% %13.2f%%\n", w.name.c_str(),
                static_cast<unsigned long long>(r.stats.instructions),
                static_cast<unsigned long long>(r.stats.decodes),
                100.0 * r.stats.decode_avoidance(),
                100.0 * r.stats.lookup_avoidance());
    json.set(w.name + ".decode_avoidance", r.stats.decode_avoidance());
    json.set(w.name + ".lookup_avoidance", r.stats.lookup_avoidance());
    json.set(w.name + ".block_chain_avoidance", r.stats.block_chain_avoidance());
  }

  const int repeats = args.quick ? 1 : 2;
  std::printf("\nMIPS per configuration (all workloads, RISC):\n");
  std::printf("%-8s %12s %12s %12s %12s\n", "app", "no cache", "cache",
              "cache+pred", "superblocks");
  for (const workloads::Workload& w : workloads::all()) {
    const elf::ElfFile exe = workloads::build_workload(w, "RISC");
    sim::SimOptions no_cache;
    no_cache.use_decode_cache = false;
    sim::SimOptions cache_only;
    cache_only.use_prediction = false;
    cache_only.use_superblocks = false;
    sim::SimOptions prediction;
    prediction.use_superblocks = false;
    const TimedRun a = timed_run(exe, no_cache, {}, 1);
    const TimedRun b = timed_run(exe, cache_only, {}, repeats);
    const TimedRun c = timed_run(exe, prediction, {}, repeats);
    const TimedRun d = timed_run(exe, {}, {}, repeats);
    std::printf("%-8s %12.2f %12.1f %12.1f %12.1f\n", w.name.c_str(), a.mips(),
                b.mips(), c.mips(), d.mips());
    json.set(w.name + ".mips.no_cache", a.mips());
    json.set(w.name + ".mips.cache", b.mips());
    json.set(w.name + ".mips.prediction", c.mips());
    json.set(w.name + ".mips.superblocks", d.mips());
  }

  json.write();
  return 0;
}
