// Ablation A: decode-cache and instruction-prediction effectiveness across
// all workloads (the paper reports the cjpeg numbers in §VII-A; this sweep
// shows the mechanism is workload-independent because of program locality).
#include "bench_util.h"

using namespace ksim;
using namespace ksim::bench;

int main() {
  header("Ablation: decode cache & instruction prediction per workload (RISC)");

  std::printf("%-8s %14s %10s %14s %14s\n", "app", "instructions", "decodes",
              "decode avoid", "lookup avoid");
  for (const workloads::Workload& w : workloads::all()) {
    const workloads::RunOutcome r =
        workloads::run_executable(workloads::build_workload(w, "RISC"));
    std::printf("%-8s %14llu %10llu %13.4f%% %13.2f%%\n", w.name.c_str(),
                static_cast<unsigned long long>(r.stats.instructions),
                static_cast<unsigned long long>(r.stats.decodes),
                100.0 * r.stats.decode_avoidance(),
                100.0 * r.stats.lookup_avoidance());
  }

  std::printf("\nMIPS per configuration (all workloads, RISC):\n");
  std::printf("%-8s %12s %12s %12s\n", "app", "no cache", "cache", "cache+pred");
  for (const workloads::Workload& w : workloads::all()) {
    const elf::ElfFile exe = workloads::build_workload(w, "RISC");
    sim::SimOptions no_cache;
    no_cache.use_decode_cache = false;
    sim::SimOptions cache_only;
    cache_only.use_prediction = false;
    const TimedRun a = timed_run(exe, no_cache, {}, 1);
    const TimedRun b = timed_run(exe, cache_only, {}, 2);
    const TimedRun c = timed_run(exe, {}, {}, 2);
    std::printf("%-8s %12.2f %12.1f %12.1f\n", w.name.c_str(), a.mips(), b.mips(),
                c.mips());
  }
  return 0;
}
