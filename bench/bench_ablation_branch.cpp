// Ablation C: branch-misprediction cycle models (the paper's stated future
// work, §VIII).  For every workload: misprediction rates of each predictor
// and the resulting DOE cycle estimates, against the perfect-prediction
// baseline used for Table II.
#include <memory>

#include "bench_util.h"
#include "cycle/branch_predict.h"
#include "cycle/models.h"

using namespace ksim;
using namespace ksim::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("ablation_branch", args);

  header("Ablation: branch prediction models (RISC, DOE, 3-cycle refill)");

  std::printf("%-8s %10s | %9s %9s %9s %9s | %12s %12s\n", "app", "branches",
              "not-tkn", "1-bit", "2-bit", "gshare", "perfect cyc", "2-bit cyc");

  for (const workloads::Workload& w : workloads::all()) {
    if (args.quick && w.name != "dct") continue;
    const elf::ElfFile exe = workloads::build_workload(w, "RISC");

    uint64_t perfect_cycles = 0;
    {
      cycle::MemoryHierarchy memory;
      cycle::DoeModel model(&memory);
      workloads::run_executable(exe, &model);
      perfect_cycles = model.cycles();
    }

    double miss[4];
    uint64_t branches = 0;
    uint64_t cycles_2bit = 0;
    const char* kinds[4] = {"not-taken", "1bit", "2bit", "gshare"};
    for (int k = 0; k < 4; ++k) {
      cycle::MemoryHierarchy memory;
      cycle::DoeModel model(&memory);
      const auto predictor = cycle::make_predictor(kinds[k]);
      model.set_branch_prediction(predictor.get(), 3);
      workloads::run_executable(exe, &model);
      miss[k] = predictor->stats().miss_rate();
      branches = predictor->stats().branches;
      if (std::string(kinds[k]) == "2bit") cycles_2bit = model.cycles();
    }
    std::printf("%-8s %10llu | %8.2f%% %8.2f%% %8.2f%% %8.2f%% | %12llu %12llu\n",
                w.name.c_str(), static_cast<unsigned long long>(branches),
                100 * miss[0], 100 * miss[1], 100 * miss[2], 100 * miss[3],
                static_cast<unsigned long long>(perfect_cycles),
                static_cast<unsigned long long>(cycles_2bit));
    json.set(w.name + ".miss_rate.2bit", miss[2]);
    json.set(w.name + ".miss_rate.gshare", miss[3]);
    json.set(w.name + ".cycles.perfect", perfect_cycles);
    json.set(w.name + ".cycles.2bit", cycles_2bit);
  }
  std::printf("\n(perfect prediction is the Table II configuration; the 2-bit"
              " column shows\n the estimate once the future-work mispredict"
              " model is enabled)\n");
  json.write();
  return 0;
}
