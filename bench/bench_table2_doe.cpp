// Reproduces Table II: accuracy of the DOE cycle approximation against the
// cycle-accurate reference model ("RTL", see DESIGN.md §2) for the DCT
// application compiled for RISC/VLIW2/VLIW4/VLIW8, plus the simulation-speed
// ratio between the approximate and the detailed model.
#include <chrono>

#include "bench_util.h"
#include "cycle/models.h"
#include "rtl/rtl_sim.h"

using namespace ksim;
using namespace ksim::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("table2_doe", args);

  header("Table II: DOE approximation vs cycle-accurate reference (DCT)");

  std::printf("%-12s %12s %14s %8s\n", "Config", "Reference", "Approximation",
              "Error");

  double total_speed_ratio = 0;
  int measured = 0;
  for (const char* isa : {"RISC", "VLIW2", "VLIW4", "VLIW8"}) {
    if (args.quick && std::string(isa) != "RISC") continue;
    const elf::ElfFile exe =
        workloads::build_workload(workloads::by_name("dct"), isa);

    // Approximate model (DOE + memory approximation), timed.
    cycle::MemoryHierarchy memory;
    cycle::DoeModel doe(&memory);
    const auto a0 = std::chrono::steady_clock::now();
    workloads::run_executable(exe, &doe);
    const auto a1 = std::chrono::steady_clock::now();

    // Detailed reference (trace-driven cycle-accurate microarchitecture).
    rtl::TraceRecorder recorder;
    workloads::run_executable(exe, &recorder);
    rtl::RtlSimulator rtl_sim;
    const auto r0 = std::chrono::steady_clock::now();
    const rtl::RtlStats rstats = rtl_sim.run(recorder.trace());
    const auto r1 = std::chrono::steady_clock::now();

    const double err = 100.0 *
        std::abs(static_cast<double>(doe.cycles()) - static_cast<double>(rstats.cycles)) /
        static_cast<double>(rstats.cycles);
    std::printf("%-12s %12llu %14llu %7.1f%%\n", isa,
                static_cast<unsigned long long>(rstats.cycles),
                static_cast<unsigned long long>(doe.cycles()), err);
    json.set(std::string(isa) + ".reference_cycles", rstats.cycles);
    json.set(std::string(isa) + ".approx_cycles", doe.cycles());
    json.set(std::string(isa) + ".error_pct", err);

    const double t_doe = std::chrono::duration<double>(a1 - a0).count();
    const double t_rtl = std::chrono::duration<double>(r1 - r0).count();
    // The approximate timing includes functional simulation; the reference
    // additionally needs the detailed replay.
    total_speed_ratio += (t_rtl + t_doe) / t_doe;
    ++measured;
  }
  std::printf("\napproximate simulator is ~%.0fx faster than the detailed "
              "reference model\n(the paper reports ~100,000x against an HDL "
              "simulator at 8 ms/instruction;\nour reference is itself a fast "
              "C++ cycle-level model — see EXPERIMENTS.md)\n",
              total_speed_ratio / measured);
  json.set("speed_ratio_vs_reference", total_speed_ratio / measured);
  json.write();
  return 0;
}
