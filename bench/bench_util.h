// Shared helpers for the paper-reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cycle/cycle_model.h"
#include "support/error.h"
#include "support/json.h"
#include "isa/kisa.h"
#include "sim/simulator.h"
#include "workloads/build.h"

namespace ksim::bench {

/// Command-line arguments every bench binary understands:
///   --json <path>  additionally emit machine-readable metrics to <path>
///   --quick        reduced workload / repeats (CI smoke-check mode)
struct BenchArgs {
  std::string json_path;
  bool quick = false;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (arg == "--quick") {
      args.quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--quick]\n", argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// Flat key/value JSON emitter so the perf trajectory is trackable across
/// PRs (ci.sh stores bench_simperf_mips output as BENCH_simperf.json).
/// Keys use dotted paths ("superblocks.mips"); write() is a no-op unless
/// --json was given.  Like every ksim JSON document, the output opens with
/// the versioned "schema"/"schema_version" header keys (DESIGN.md §7).
class BenchJson {
public:
  BenchJson(const std::string& bench_name, const BenchArgs& args)
      : path_(args.json_path) {
    set("schema", std::string("ksim.bench"));
    set("schema_version", support::kJsonSchemaVersion);
    set("bench", bench_name);
    set("quick", args.quick);
  }

  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.8g", value);
    entries_.emplace_back(key, buf);
  }
  void set(const std::string& key, uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, int value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }
  void set(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    quoted += escape(value);
    quoted += '"';
    entries_.emplace_back(key, std::move(quoted));
  }

  /// Writes `{"key": value, ...}`; throws on I/O failure so CI notices.
  void write() const {
    if (path_.empty()) return;
    std::ofstream out(path_);
    check(out.good(), "cannot write " + path_);
    out << "{\n";
    for (size_t i = 0; i < entries_.size(); ++i)
      out << "  \"" << escape(entries_[i].first) << "\": " << entries_[i].second
          << (i + 1 < entries_.size() ? ",\n" : "\n");
    out << "}\n";
    check(out.good(), "error writing " + path_);
    std::printf("\nwrote %s\n", path_.c_str());
  }

private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string path_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Wall-clock seconds of the fastest of `repeats` runs of `fn`.
inline double time_best(const std::function<void()>& fn, int repeats = 3) {
  double best = 1e30;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct TimedRun {
  double seconds = 0;
  uint64_t instructions = 0;
  uint64_t operations = 0;
  sim::SimStats stats;
  uint64_t cycles = 0;

  double mips() const { return instructions / seconds / 1e6; }
  double ns_per_instr() const { return seconds * 1e9 / static_cast<double>(instructions); }
};

/// Runs `exe` with the given simulator options / optional model, timed
/// (fastest of `repeats`).
inline TimedRun timed_run(const elf::ElfFile& exe, const sim::SimOptions& opts,
                          const std::function<cycle::CycleModel*()>& make_model = {},
                          int repeats = 3) {
  TimedRun out;
  out.seconds = 1e30;
  for (int i = 0; i < repeats; ++i) {
    sim::Simulator simulator(isa::kisa(), opts);
    simulator.load(exe);
    cycle::CycleModel* model = make_model ? make_model() : nullptr;
    if (model != nullptr) simulator.set_cycle_model(model);
    const auto t0 = std::chrono::steady_clock::now();
    const sim::StopReason reason = simulator.run();
    const auto t1 = std::chrono::steady_clock::now();
    if (reason != sim::StopReason::Exited)
      throw ksim::Error("bench run did not exit cleanly: " +
                  std::string(sim::to_string(reason)));
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs < out.seconds) {
      out.seconds = secs;
      out.instructions = simulator.stats().instructions;
      out.operations = simulator.stats().operations;
      out.stats = simulator.stats();
      out.cycles = model != nullptr ? model->cycles() : 0;
    }
  }
  return out;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Records one timed configuration under `prefix.*` JSON keys.
inline void json_run(BenchJson& json, const std::string& prefix, const TimedRun& run) {
  json.set(prefix + ".mips", run.mips());
  json.set(prefix + ".ns_per_instr", run.ns_per_instr());
  json.set(prefix + ".instructions", run.instructions);
}

} // namespace ksim::bench
