// Shared helpers for the paper-reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "cycle/cycle_model.h"
#include "support/error.h"
#include "isa/kisa.h"
#include "sim/simulator.h"
#include "workloads/build.h"

namespace ksim::bench {

/// Wall-clock seconds of the fastest of `repeats` runs of `fn`.
inline double time_best(const std::function<void()>& fn, int repeats = 3) {
  double best = 1e30;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct TimedRun {
  double seconds = 0;
  uint64_t instructions = 0;
  uint64_t operations = 0;
  sim::SimStats stats;
  uint64_t cycles = 0;

  double mips() const { return instructions / seconds / 1e6; }
  double ns_per_instr() const { return seconds * 1e9 / static_cast<double>(instructions); }
};

/// Runs `exe` with the given simulator options / optional model, timed
/// (fastest of `repeats`).
inline TimedRun timed_run(const elf::ElfFile& exe, const sim::SimOptions& opts,
                          const std::function<cycle::CycleModel*()>& make_model = {},
                          int repeats = 3) {
  TimedRun out;
  out.seconds = 1e30;
  for (int i = 0; i < repeats; ++i) {
    sim::Simulator simulator(isa::kisa(), opts);
    simulator.load(exe);
    cycle::CycleModel* model = make_model ? make_model() : nullptr;
    if (model != nullptr) simulator.set_cycle_model(model);
    const auto t0 = std::chrono::steady_clock::now();
    const sim::StopReason reason = simulator.run();
    const auto t1 = std::chrono::steady_clock::now();
    if (reason != sim::StopReason::Exited)
      throw ksim::Error("bench run did not exit cleanly: " +
                  std::string(sim::to_string(reason)));
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs < out.seconds) {
      out.seconds = secs;
      out.instructions = simulator.stats().instructions;
      out.operations = simulator.stats().operations;
      out.stats = simulator.stats();
      out.cycles = model != nullptr ? model->cycles() : 0;
    }
  }
  return out;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace ksim::bench
