// ksweep throughput: points/second of the parallel sweep engine at 1, 2 and
// 8 worker threads over a Figure-4-style grid, plus the thread-scaling
// speedup relative to the single-threaded run.
//
// The speedup numbers are only meaningful on multi-core hosts; hw_threads
// records std::thread::hardware_concurrency() so consumers (ci.sh) can gate
// the scaling acceptance threshold on it honestly instead of failing on
// single-core CI boxes where >1x is physically impossible.
#include <thread>

#include "api/sweep.h"
#include "bench_util.h"

using namespace ksim;
using namespace ksim::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("sweep", args);
  header("ksweep: parallel sweep throughput and thread scaling");

  api::SweepSpec spec;
  spec.workloads = args.quick ? std::vector<std::string>{"dct"}
                              : std::vector<std::string>{"cjpeg", "dct"};
  spec.isas = args.quick
                  ? std::vector<std::string>{"RISC", "VLIW2", "VLIW4"}
                  : std::vector<std::string>{"RISC", "VLIW2", "VLIW4", "VLIW6",
                                             "VLIW8"};
  spec.models = {"ilp", "aie", "doe"};
  spec.base.echo_output = false;
  spec.validate();

  const size_t total = spec.workloads.size() * spec.isas.size() * spec.models.size();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("grid: %zu workloads x %zu ISAs x %zu models = %zu points, "
              "%u hardware threads\n\n",
              spec.workloads.size(), spec.isas.size(), spec.models.size(),
              total, hw);
  json.set("points", static_cast<uint64_t>(total));
  json.set("hw_threads", static_cast<int>(hw));

  const int repeats = args.quick ? 2 : 3;
  double serial_s = 0.0;
  for (const int threads : {1, 2, 8}) {
    spec.threads = threads;
    double best = 1e30;
    size_t failed = 0;
    for (int r = 0; r < repeats; ++r) {
      const api::SweepResult result = api::run_sweep(spec);
      check(result.points.size() == total, "sweep dropped points");
      failed = result.failed;
      best = std::min(best, result.wall_seconds);
    }
    check(failed == 0, "sweep points failed under bench");
    if (threads == 1) serial_s = best;
    const double pps = static_cast<double>(total) / best;
    const double speedup = serial_s / best;
    std::printf("%d thread%s: %7.3f s  %7.2f points/s  speedup %.2fx\n",
                threads, threads == 1 ? " " : "s", best, pps, speedup);
    const std::string prefix = "threads." + std::to_string(threads);
    json.set(prefix + ".wall_s", best);
    json.set(prefix + ".points_per_s", pps);
    json.set(prefix + ".speedup", speedup);
  }

  json.write();
  return 0;
}
