// Reproduces §VII-A's simulator-performance narrative: simulation speed in
// MIPS without the decode cache, with the decode cache, and with instruction
// prediction, plus the decode/lookup avoidance rates (paper: 0.177 → 16.7 →
// 29.5 MIPS; 99.991 % of decodes and 99.2 % of hash lookups avoided), and
// the MIPS with each cycle-approximation model active.
#include <memory>

#include "bench_util.h"
#include "cycle/models.h"

using namespace ksim;
using namespace ksim::bench;

int main() {
  header("SVII-A: simulator performance in MIPS (cjpeg, RISC instance)");

  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("cjpeg"), "RISC");

  sim::SimOptions no_cache;
  no_cache.use_decode_cache = false;
  sim::SimOptions cache_only;
  cache_only.use_prediction = false;
  sim::SimOptions full;

  const TimedRun a = timed_run(exe, no_cache);
  const TimedRun b = timed_run(exe, cache_only);
  const TimedRun c = timed_run(exe, full);

  std::printf("%-36s %10s %12s\n", "Configuration", "MIPS", "speedup");
  std::printf("%-36s %10.3f %12s\n", "interpretation only (no decode cache)",
              a.mips(), "1.0x");
  std::printf("%-36s %10.1f %11.1fx\n", "+ decode cache", b.mips(),
              b.mips() / a.mips());
  std::printf("%-36s %10.1f %11.1fx\n", "+ instruction prediction", c.mips(),
              c.mips() / a.mips());
  std::printf("\ndetect & decode avoided by the cache: %.4f%% of instructions\n",
              100.0 * c.stats.decode_avoidance());
  std::printf("hash lookups avoided by prediction:    %.2f%% of lookups\n",
              100.0 * c.stats.lookup_avoidance());

  cycle::MemoryHierarchy memory;
  std::unique_ptr<cycle::CycleModel> model;
  auto with_model = [&](char kind) {
    return timed_run(exe, full, [&, kind]() -> cycle::CycleModel* {
      memory.reset();
      if (kind == 'i') model = std::make_unique<cycle::IlpModel>();
      else if (kind == 'a') model = std::make_unique<cycle::AieModel>(&memory);
      else model = std::make_unique<cycle::DoeModel>(&memory);
      return model.get();
    });
  };
  std::printf("\n%-36s %10s\n", "Cycle approximation active", "MIPS");
  std::printf("%-36s %10.1f\n", "ILP measurement", with_model('i').mips());
  std::printf("%-36s %10.1f\n", "AIE (incl. memory model)", with_model('a').mips());
  std::printf("%-36s %10.1f\n", "DOE (incl. memory model)", with_model('d').mips());
  return 0;
}
