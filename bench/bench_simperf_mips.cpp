// Reproduces §VII-A's simulator-performance narrative: simulation speed in
// MIPS without the decode cache, with the decode cache, with instruction
// prediction, with the superblock engine that generalizes prediction to
// block chaining (paper: 0.177 → 16.7 → 29.5 MIPS; 99.991 % of decodes and
// 99.2 % of hash lookups avoided), and with the kjit translation of hot
// superblocks to host code on top, plus the MIPS with each
// cycle-approximation model active.
//
//   --json <path>  emit machine-readable metrics (ci.sh → BENCH_simperf.json)
//   --quick        single repeat, no cycle-model sweep (CI smoke check)
#include <memory>

#include "bench_util.h"
#include "cycle/models.h"

using namespace ksim;
using namespace ksim::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("simperf_mips", args);
  const int repeats = args.quick ? 1 : 3;

  header("SVII-A: simulator performance in MIPS (cjpeg, RISC instance)");

  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("cjpeg"), "RISC");
  json.set("workload", std::string("cjpeg"));
  json.set("isa", std::string("RISC"));

  // The first four tiers isolate the interpreter ablation ladder, so the
  // JIT is pinned off; the fifth tier is the all-defaults engine with kjit
  // translating hot superblocks to host code.
  sim::SimOptions no_cache;
  no_cache.use_decode_cache = false;
  no_cache.use_jit = false;
  sim::SimOptions cache_only;
  cache_only.use_prediction = false;
  cache_only.use_superblocks = false;
  cache_only.use_jit = false;
  sim::SimOptions prediction;
  prediction.use_superblocks = false;
  prediction.use_jit = false;
  sim::SimOptions superblocks; // cache + prediction + superblocks
  superblocks.use_jit = false;
  sim::SimOptions jit; // everything on (default)

  const TimedRun a = timed_run(exe, no_cache, {}, repeats);
  const TimedRun b = timed_run(exe, cache_only, {}, repeats);
  const TimedRun c = timed_run(exe, prediction, {}, repeats);
  const TimedRun d = timed_run(exe, superblocks, {}, repeats);
  const TimedRun e = timed_run(exe, jit, {}, repeats);

  std::printf("%-38s %10s %12s\n", "Configuration", "MIPS", "speedup");
  std::printf("%-38s %10.3f %12s\n", "interpretation only (no decode cache)",
              a.mips(), "1.0x");
  std::printf("%-38s %10.1f %11.1fx\n", "+ decode cache", b.mips(),
              b.mips() / a.mips());
  std::printf("%-38s %10.1f %11.1fx\n", "+ instruction prediction", c.mips(),
              c.mips() / a.mips());
  std::printf("%-38s %10.1f %11.1fx\n", "+ superblock chaining", d.mips(),
              d.mips() / a.mips());
  std::printf("%-38s %10.1f %11.1fx\n", "+ jit translation (kjit)", e.mips(),
              e.mips() / a.mips());
  std::printf("\nsuperblocks vs. prediction-only: %.2fx\n", d.mips() / c.mips());
  std::printf("jit vs. superblock interpreter:  %.2fx\n", e.mips() / d.mips());
  std::printf("detect & decode avoided by the cache:  %.4f%% of instructions\n",
              100.0 * d.stats.decode_avoidance());
  std::printf("hash lookups avoided (prediction):     %.2f%% of lookups\n",
              100.0 * c.stats.lookup_avoidance());
  std::printf("hash lookups avoided (superblocks):    %.2f%% of lookups\n",
              100.0 * d.stats.lookup_avoidance());
  std::printf("block dispatches resolved by chaining: %.2f%% of %llu\n",
              100.0 * d.stats.block_chain_avoidance(),
              static_cast<unsigned long long>(d.stats.block_dispatches));

  json_run(json, "no_cache", a);
  json_run(json, "cache", b);
  json_run(json, "prediction", c);
  json_run(json, "superblocks", d);
  json_run(json, "jit", e);
  json.set("superblocks.speedup_vs_prediction", d.mips() / c.mips());
  json.set("jit.speedup_vs_superblocks", e.mips() / d.mips());
  json.set("jit.blocks_translated", e.stats.jit_blocks_translated);
  json.set("jit.dispatches", e.stats.jit_dispatches);
  json.set("jit.side_exits", e.stats.jit_side_exits);
  json.set("jit.bailouts", e.stats.jit_bailouts);
  json.set("prediction.lookup_avoidance", c.stats.lookup_avoidance());
  json.set("superblocks.decode_avoidance", d.stats.decode_avoidance());
  json.set("superblocks.lookup_avoidance", d.stats.lookup_avoidance());
  json.set("superblocks.block_chain_avoidance", d.stats.block_chain_avoidance());
  json.set("superblocks.blocks_formed", d.stats.blocks_formed);
  json.set("superblocks.block_dispatches", d.stats.block_dispatches);

  if (!args.quick) {
    cycle::MemoryHierarchy memory;
    std::unique_ptr<cycle::CycleModel> model;
    auto with_model = [&](char kind) {
      return timed_run(exe, superblocks, [&, kind]() -> cycle::CycleModel* {
        memory.reset();
        if (kind == 'i') model = std::make_unique<cycle::IlpModel>();
        else if (kind == 'a') model = std::make_unique<cycle::AieModel>(&memory);
        else model = std::make_unique<cycle::DoeModel>(&memory);
        return model.get();
      });
    };
    const TimedRun ilp = with_model('i');
    const TimedRun aie = with_model('a');
    const TimedRun doe = with_model('d');
    std::printf("\n%-38s %10s\n", "Cycle approximation active", "MIPS");
    std::printf("%-38s %10.1f\n", "ILP measurement", ilp.mips());
    std::printf("%-38s %10.1f\n", "AIE (incl. memory model)", aie.mips());
    std::printf("%-38s %10.1f\n", "DOE (incl. memory model)", doe.mips());
    json_run(json, "ilp", ilp);
    json_run(json, "aie", aie);
    json_run(json, "doe", doe);
  }

  json.write();
  return 0;
}
