// Micro-benchmarks (google-benchmark) of the simulator primitives whose
// costs Table I aggregates: operation detection, decode-cache hits,
// interpreter steps, cycle-model updates and memory-hierarchy accesses.
#include <benchmark/benchmark.h>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "kcc/compiler.h"
#include "sim/simulator.h"

namespace ksim {
namespace {

const isa::IsaSet& set() { return isa::kisa(); }

void BM_Detect(benchmark::State& state) {
  const isa::IsaInfo& risc = *set().find_isa("RISC");
  // A mix of encodings across the operation table.
  std::vector<uint32_t> words;
  for (const isa::OpInfo* op : risc.ops)
    words.push_back(op->match_bits | (1u << set().stop_bit()));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set().detect(risc, words[i]));
    i = (i + 1) % words.size();
  }
}
BENCHMARK(BM_Detect);

elf::ElfFile tight_loop_exe() {
  const elf::ElfFile user = kasm::assemble_or_throw(R"(
.global main
main:
  addi r5, r0, 0
  li r6, 1000000000
loop:
  addi r5, r5, 1
  add r7, r5, r6
  xor r8, r7, r5
  bne r5, r6, loop
  mv r4, r0
  ret
)");
  const elf::ElfFile start = kasm::assemble_or_throw(kasm::start_stub_assembly());
  const elf::ElfFile libc = kasm::assemble_or_throw(kasm::libc_stub_assembly());
  return kasm::link_or_throw({start, user, libc});
}

void BM_InterpreterStep(benchmark::State& state) {
  sim::Simulator simulator(set());
  simulator.load(tight_loop_exe());
  for (auto _ : state) {
    if (simulator.step().has_value()) state.SkipWithError("program ended");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterStep);

void BM_InterpreterStepNoCache(benchmark::State& state) {
  sim::SimOptions opts;
  opts.use_decode_cache = false;
  sim::Simulator simulator(set(), opts);
  simulator.load(tight_loop_exe());
  for (auto _ : state) {
    if (simulator.step().has_value()) state.SkipWithError("program ended");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterStepNoCache);

isa::DecodedInstr synthetic_instr() {
  isa::DecodedInstr di;
  const isa::OpInfo* add = set().find_op("ADD");
  di.num_ops = 2;
  di.size_bytes = 8;
  for (int s = 0; s < 2; ++s) {
    di.ops[s].info = add;
    di.ops[s].fn = add->fn;
    di.ops[s].rd = static_cast<uint8_t>(5 + s);
    di.ops[s].ra = 1;
    di.ops[s].rb = 2;
  }
  return di;
}

template <typename ModelT, bool kWithMem>
void BM_CycleModel(benchmark::State& state) {
  cycle::MemoryHierarchy memory;
  ModelT model = [&] {
    if constexpr (std::is_same_v<ModelT, cycle::IlpModel>)
      return cycle::IlpModel();
    else
      return ModelT(kWithMem ? &memory : nullptr);
  }();
  const isa::DecodedInstr di = synthetic_instr();
  isa::ExecCtx ctx;
  ctx.begin_instruction(0);
  for (auto _ : state) {
    model.on_instruction(di, ctx);
    benchmark::DoNotOptimize(model.cycles());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CycleModel<cycle::IlpModel, false>)->Name("BM_IlpModel");
BENCHMARK(BM_CycleModel<cycle::AieModel, true>)->Name("BM_AieModel");
BENCHMARK(BM_CycleModel<cycle::DoeModel, true>)->Name("BM_DoeModel");

void BM_MemoryHierarchyHit(benchmark::State& state) {
  cycle::MemoryHierarchy memory;
  memory.entry().access(0x1000, cycle::AccessType::Read, 0, 0);
  uint64_t now = 10;
  for (auto _ : state) {
    now = memory.entry().access(0x1000, cycle::AccessType::Read, 0, now) + 1;
  }
}
BENCHMARK(BM_MemoryHierarchyHit);

void BM_MemoryHierarchyStream(benchmark::State& state) {
  cycle::MemoryHierarchy memory;
  uint32_t addr = 0;
  uint64_t now = 0;
  for (auto _ : state) {
    now = memory.entry().access(addr, cycle::AccessType::Read, 0, now) + 1;
    addr = (addr + 32) & 0xFFFFF;
  }
}
BENCHMARK(BM_MemoryHierarchyStream);

void BM_Assemble(benchmark::State& state) {
  const std::string source = kasm::libc_stub_assembly();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kasm::assemble_or_throw(source));
  }
}
BENCHMARK(BM_Assemble);

void BM_CompileFib(benchmark::State& state) {
  const char* src =
      "int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }\n"
      "int main() { return fib(10); }\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(kcc::compile_or_throw(src));
  }
}
BENCHMARK(BM_CompileFib);

} // namespace
} // namespace ksim

// Same CLI contract as the other bench binaries: --json <path> emits
// machine-readable results (mapped onto google-benchmark's --benchmark_out),
// --quick caps each benchmark's run time.  Other flags pass through untouched.
int main(int argc, char** argv) {
  std::vector<std::string> argstrs;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      argstrs.push_back(std::string("--benchmark_out=") + argv[++i]);
      argstrs.push_back("--benchmark_out_format=json");
    } else if (arg == "--quick") {
      argstrs.push_back("--benchmark_min_time=0.05s");
    } else {
      argstrs.push_back(arg);
    }
  }
  std::vector<char*> cargs;
  for (std::string& s : argstrs) cargs.push_back(s.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
