// kjit performance gate: hot superblocks translated to host x86-64 must run
// the cjpeg workload at >= 3x the MIPS of the superblock interpreter on the
// RISC instance and >= 2.5x on the VLIW instances (ci.sh enforces both
// ratios from the JSON on x86-64 hosts).  Also reports the
// translation-activity counters and a second workload (dct) as a sanity
// point for the speedup's generality.
//
//   --json <path>  emit machine-readable metrics (ci.sh → BENCH_jit.json)
//   --quick        fewer repeats (CI smoke check)
#include <cctype>
#include <cstring>

#include "bench_util.h"

using namespace ksim;
using namespace ksim::bench;

namespace {

/// JSON keys stay flat: the RISC tier keeps the legacy unprefixed keys
/// ("cjpeg.speedup", the ci.sh gate), VLIW tiers insert the lowercased
/// instance ("cjpeg.vliw2.speedup").
std::string key_prefix(const char* workload, const char* isa_name) {
  std::string prefix = workload;
  if (std::strcmp(isa_name, "RISC") != 0) {
    prefix += '.';
    for (const char* p = isa_name; *p != '\0'; ++p)
      prefix += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  return prefix;
}

void bench_workload(BenchJson& json, const char* workload,
                    const char* isa_name, int repeats) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name(workload), isa_name);
  sim::SimOptions interp; // superblock engine, no translation
  interp.use_jit = false;
  const sim::SimOptions jit; // everything on (default)

  const TimedRun a = timed_run(exe, interp, {}, repeats);
  const TimedRun b = timed_run(exe, jit, {}, repeats);
  const double speedup = b.mips() / a.mips();

  const std::string label = std::string(workload) + "/" + isa_name;
  std::printf("%-12s %22s %10.1f MIPS\n", label.c_str(),
              "superblock interpreter", a.mips());
  std::printf("%-12s %22s %10.1f MIPS  (%.2fx)\n", label.c_str(),
              "jit translation", b.mips(), speedup);
  std::printf("%-12s %22s %llu translated, %llu/%llu dispatches jitted,"
              " %llu side exits, %llu bailouts\n\n",
              label.c_str(), "",
              static_cast<unsigned long long>(b.stats.jit_blocks_translated),
              static_cast<unsigned long long>(b.stats.jit_dispatches),
              static_cast<unsigned long long>(b.stats.block_dispatches),
              static_cast<unsigned long long>(b.stats.jit_side_exits),
              static_cast<unsigned long long>(b.stats.jit_bailouts));

  const std::string prefix = key_prefix(workload, isa_name);
  json_run(json, prefix + ".superblocks", a);
  json_run(json, prefix + ".jit", b);
  json.set(prefix + ".speedup", speedup);
  json.set(prefix + ".blocks_translated", b.stats.jit_blocks_translated);
  json.set(prefix + ".jit_dispatches", b.stats.jit_dispatches);
  json.set(prefix + ".block_dispatches", b.stats.block_dispatches);
  json.set(prefix + ".side_exits", b.stats.jit_side_exits);
  json.set(prefix + ".bailouts", b.stats.jit_bailouts);
}

} // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("jit", args);
  const int repeats = args.quick ? 2 : 3;

  header("kjit: host translation vs. superblock interpreter");

  // KSIM_NO_JIT / a non-x86-64 host / a stub build leave the engine off; the
  // gates in ci.sh key off this flag so such configurations pass trivially.
  const bool available =
      sim::Simulator(isa::kisa(), sim::SimOptions{}).options().use_jit;
  json.set("jit_available", available);
  if (!available)
    std::printf("jit engine unavailable on this host/config;"
                " timings compare interpreter to itself\n\n");

  for (const char* isa : {"RISC", "VLIW2", "VLIW4"}) {
    bench_workload(json, "cjpeg", isa, repeats); // the gated workload
    bench_workload(json, "dct", isa, repeats);
  }

  json.write();
  return 0;
}
