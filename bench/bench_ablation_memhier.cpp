// Ablation B: memory-hierarchy configuration sweep on AES (the workload the
// paper singles out as L1-bound: its working set exceeds the 2 KiB L1 and
// causes 14% misses).  Sweeps L1 size, associativity and port count and
// reports DOE cycles and L1 miss rate.
#include "bench_util.h"
#include "cycle/models.h"
#include "support/strings.h"

using namespace ksim;
using namespace ksim::bench;

namespace {

void run_config(const elf::ElfFile& exe, const char* label,
                const cycle::HierarchyConfig& cfg, BenchJson& json,
                const std::string& key) {
  cycle::MemoryHierarchy memory(cfg);
  cycle::DoeModel doe(&memory);
  workloads::run_executable(exe, &doe);
  std::printf("%-26s %12llu %10.2f%% %10.2f%%\n", label,
              static_cast<unsigned long long>(doe.cycles()),
              100.0 * memory.l1().miss_rate(), 100.0 * memory.l2().miss_rate());
  json.set(key + ".cycles", doe.cycles());
  json.set(key + ".l1_miss_rate", memory.l1().miss_rate());
}

} // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  BenchJson json("ablation_memhier", args);

  header("Ablation: memory hierarchy sweep on AES (RISC, DOE model)");
  const elf::ElfFile exe = workloads::build_workload(workloads::by_name("aes"), "RISC");

  std::printf("%-26s %12s %11s %11s\n", "configuration", "DOE cycles", "L1 miss",
              "L2 miss");

  for (const uint32_t size : {1024u, 2048u, 4096u, 8192u}) {
    if (args.quick && size != 2048u) continue;
    cycle::HierarchyConfig cfg;
    cfg.l1.size_bytes = size;
    run_config(exe, ksim::strf("L1 %u B (4-way, 1 port)", size).c_str(), cfg,
               json, ksim::strf("l1_size_%u", size));
  }
  if (!args.quick) {
    for (const uint32_t assoc : {1u, 2u, 8u}) {
      cycle::HierarchyConfig cfg;
      cfg.l1.associativity = assoc;
      run_config(exe, ksim::strf("L1 2048 B (%u-way, 1 port)", assoc).c_str(),
                 cfg, json, ksim::strf("l1_assoc_%u", assoc));
    }
    for (const unsigned ports : {2u, 4u}) {
      cycle::HierarchyConfig cfg;
      cfg.l1_ports = ports;
      run_config(exe, ksim::strf("L1 2048 B (4-way, %u ports)", ports).c_str(),
                 cfg, json, ksim::strf("l1_ports_%u", ports));
    }
    {
      cycle::HierarchyConfig cfg;
      cfg.l2.delay = 12;
      run_config(exe, "slow L2 (12-cycle latency)", cfg, json, "l2_slow");
    }
    {
      cycle::HierarchyConfig cfg;
      cfg.memory_delay = 60;
      run_config(exe, "slow DRAM (60-cycle latency)", cfg, json, "dram_slow");
    }
  }
  json.write();
  return 0;
}
