// Function-granularity ISA selection — the paper's motivating use case
// (§I, §VIII): the theoretical ILP measurement serves as an indicator for
// choosing an ISA per function *without* simulating every (ISA, application)
// combination.  This example profiles a program per function under the ILP
// model, recommends an issue width per function, and then validates the
// recommendation by actually simulating the alternatives with the DOE model.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "sim/simulator.h"
#include "workloads/build.h"

namespace {

/// Maps a theoretical ILP value to the narrowest ISA that can exploit it
/// (leaving headroom costs resources — the KAHRISMA fabric could run another
/// thread on the freed EDPEs, Fig. 1 of the paper).
const char* recommend(double ilp) {
  if (ilp >= 5.0) return "VLIW8";
  if (ilp >= 3.0) return "VLIW4";
  if (ilp >= 1.7) return "VLIW2";
  return "RISC";
}

} // namespace

int main() {
  using namespace ksim;

  const char* source = R"(
int img[1024];

/* High ILP: independent accumulators, unrolled. */
int blocksum(int *a, int n) {
  int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
  int s4 = 0; int s5 = 0; int s6 = 0; int s7 = 0;
  for (int i = 0; i < n; i += 8) {
    s0 += a[i];     s1 += a[i + 1]; s2 += a[i + 2]; s3 += a[i + 3];
    s4 += a[i + 4]; s5 += a[i + 5]; s6 += a[i + 6]; s7 += a[i + 7];
  }
  return s0 + s1 + s2 + s3 + s4 + s5 + s6 + s7;
}

/* Low ILP: a serial dependency chain. */
int hash_chain(int *a, int n) {
  int h = 17;
  for (int i = 0; i < n; i++) h = h * 31 + a[i];
  return h;
}

int main() {
  for (int i = 0; i < 1024; i++) img[i] = (i * 1103 + 7) % 251;
  int s = 0;
  for (int r = 0; r < 20; r++) {
    s += blocksum(img, 1024);
    s += hash_chain(img, 1024);
  }
  put_int(s);
  return 0;
}
)";

  // Step 1: one RISC simulation with the ILP model + per-function profile.
  const elf::ElfFile risc_exe =
      workloads::build_executable(source, "RISC", "select.c");
  cycle::IlpModel ilp;
  sim::Simulator simulator(isa::kisa());
  sim::Profiler profiler;
  simulator.set_profiler(&profiler);
  simulator.load(risc_exe);
  simulator.set_cycle_model(&ilp);
  simulator.run();
  std::printf("whole-program theoretical ILP: %.2f\n\n", ilp.ilp());

  // Per-function ILP needs per-function cycles: approximate with the
  // operations/cycles attributed to each function by the profiler.
  std::printf("%-12s %10s %8s  %s\n", "function", "ops", "ILP", "recommended ISA");
  struct Pick {
    std::string fn;
    const char* isa;
  };
  std::vector<Pick> picks;
  for (const sim::FuncProfile& p : profiler.report()) {
    if (p.name != "blocksum" && p.name != "hash_chain") continue;
    // Cycle deltas of the global ILP clock can be tiny for code that fully
    // overlaps earlier work; clamp the indicator to the widest configuration.
    double fn_ilp =
        p.cycles == 0 ? 16.0
                      : static_cast<double>(p.operations) / static_cast<double>(p.cycles);
    fn_ilp = std::min(fn_ilp, 16.0);
    std::printf("%-12s %10llu %8.2f  %s\n", p.name.c_str(),
                static_cast<unsigned long long>(p.operations), fn_ilp,
                recommend(fn_ilp));
    picks.push_back({p.name, recommend(fn_ilp)});
  }

  // Step 2: validate — simulate the whole program at every uniform width with
  // the DOE model and show where the cycles level off.
  std::printf("\nvalidation (uniform ISA, DOE model):\n%-8s %12s %10s\n", "ISA",
              "cycles", "speedup");
  uint64_t base = 0;
  for (const char* isa : {"RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8"}) {
    cycle::MemoryHierarchy memory;
    cycle::DoeModel doe(&memory);
    workloads::run_executable(workloads::build_executable(source, isa, "select.c"),
                              &doe);
    if (base == 0) base = doe.cycles();
    std::printf("%-8s %12llu %9.2fx\n", isa,
                static_cast<unsigned long long>(doe.cycles()),
                static_cast<double>(base) / static_cast<double>(doe.cycles()));
  }
  std::printf("\n(the ILP indicator separates the parallel kernel from the serial\n"
              " one without simulating every ISA/application combination)\n");
  return 0;
}
