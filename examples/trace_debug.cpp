// Trace generation and error detection (paper §IV goals 3 & 4, §V-C):
//  * generate an operation trace of the exact processor behaviour (used in
//    the paper to validate the RTL hardware implementation),
//  * map instruction addresses back to assembly/source lines, and
//  * show the debugging report the simulator produces when an application
//    misbehaves (bad pointer), including the instruction pointer history.
#include <cstdio>
#include <sstream>

#include "isa/kisa.h"
#include "sim/simulator.h"
#include "workloads/build.h"

int main() {
  using namespace ksim;

  // -- 1. Tracing a correct program -------------------------------------------
  const char* good = R"(
int acc(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  return s;
}
int main() {
  int v[4];
  for (int i = 0; i < 4; i++) v[i] = (i + 1) * 10;
  return acc(v, 4);
}
)";
  {
    sim::Simulator simulator(isa::kisa());
    simulator.load(workloads::build_executable(good, "RISC", "good.c"));
    std::ostringstream trace_stream;
    sim::TraceWriter trace(trace_stream);
    simulator.set_trace(&trace);
    simulator.run();
    std::printf("exit code %d, traced %llu operations; first lines:\n",
                simulator.exit_code(),
                static_cast<unsigned long long>(trace.records()));
    std::istringstream lines(trace_stream.str());
    std::string line;
    for (int i = 0; i < 8 && std::getline(lines, line); ++i)
      std::printf("  %s\n", line.c_str());

    // Address → function/source mapping from the ELF debug sections.
    const elf::LoadedImage& image = simulator.image();
    const elf::FuncInfo* acc = image.find_function("acc");
    if (acc != nullptr)
      std::printf("\nacc() occupies [%#x, %#x); %s\n", acc->addr,
                  acc->addr + acc->size, image.describe(acc->addr).c_str());
  }

  // -- 2. Error detection ---------------------------------------------------------
  const char* bad = R"(
int fill(int *p, int n) {
  for (int i = 0; i < n; i++) p[i] = i;   /* runs far past the buffer */
  return p[0];
}
int main() {
  int buf[4];
  return fill(buf, 100000000);
}
)";
  {
    sim::Simulator simulator(isa::kisa());
    simulator.load(workloads::build_executable(bad, "RISC", "bad.c"));
    const sim::StopReason reason = simulator.run();
    std::printf("\nfaulty program stopped with: %s\n", sim::to_string(reason));
    std::printf("%s", simulator.error_report().c_str());
  }
  return 0;
}
