// Quickstart: assemble a small K-ISA program, link it with the generated
// C-library stubs, run it in the cycle-approximate simulator and print the
// estimates of all three cycle models (ILP / AIE / DOE, paper §VI).
//
// Also shows the ADL → TargetGen step: the operation tables used below are
// built from the textual architecture description at startup, and TargetGen
// can render them back as the C++ fragment an offline generator would emit.
#include <cstdio>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "isa/targetgen.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "sim/simulator.h"

int main() {
  using namespace ksim;

  // 1. The architecture: ISAs and operation tables from the ADL description.
  const isa::IsaSet& arch = isa::kisa();
  std::printf("K-ISA family from the ADL description:\n");
  for (const isa::IsaInfo& i : arch.isas())
    std::printf("  %-6s id=%d issue=%d ops=%zu\n", i.name.c_str(), i.id,
                i.issue_width, i.ops.size());
  std::printf("(TargetGen can emit this table as C++: %zu characters)\n\n",
              isa::TargetGen::emit_cpp(arch).size());

  // 2. A program: sum of the first 100 squares, printed via the emulated libc.
  const char* source = R"(
.global main
.func main
  addi sp, sp, -8
  sw ra, 0(sp)
  addi r5, r0, 0      # sum
  addi r6, r0, 1      # i
  addi r7, r0, 100
loop:
  mul r8, r6, r6
  add r5, r5, r8
  addi r6, r6, 1
  bge r7, r6, loop
  mv r4, r5
  call put_int        # print the sum
  lw ra, 0(sp)
  addi sp, sp, 8
  mv r4, r0
  ret
.endfunc
)";
  const elf::ElfFile exe = kasm::link_or_throw({
      kasm::assemble_or_throw(kasm::start_stub_assembly("RISC")),
      kasm::assemble_or_throw(source),
      kasm::assemble_or_throw(kasm::libc_stub_assembly()),
  });

  // 3. Run once per cycle model.
  struct Row {
    const char* name;
    uint64_t cycles;
    double opc;
  };
  for (int m = 0; m < 3; ++m) {
    cycle::MemoryHierarchy memory; // the paper's L1/L2/DRAM configuration
    cycle::IlpModel ilp;
    cycle::AieModel aie(&memory);
    cycle::DoeModel doe(&memory);
    cycle::CycleModel* model = &ilp;
    if (m == 1) model = &aie;
    if (m == 2) model = &doe;

    sim::Simulator simulator(arch);
    simulator.load(exe);
    simulator.set_cycle_model(model);
    const sim::StopReason reason = simulator.run();
    if (m == 0)
      std::printf("program output: %s", simulator.libc().output().c_str());
    std::printf("%-4s: %6llu cycles (%.2f ops/cycle), stop: %s\n",
                model->name().c_str(),
                static_cast<unsigned long long>(model->cycles()),
                model->ops_per_cycle(), sim::to_string(reason));
  }
  return 0;
}
