// Compile a MiniC program with the retargetable compiler, run it, and print
// a per-function profile driven by the DOE cycle model — the dynamic program
// analysis the paper names as a simulator goal (§IV, goal 2) and the basis
// for function-granularity ISA selection.
#include <cstdio>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "sim/simulator.h"
#include "workloads/build.h"

int main() {
  using namespace ksim;

  const char* source = R"(
int poly(int x) {
  return ((x * 3 + 1) * x + 7) * x + 11;
}

int sum_range(int lo, int hi) {
  int s = 0;
  for (int i = lo; i < hi; i++) s += poly(i);
  return s;
}

int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

int main() {
  int a = sum_range(0, 100);
  int b = fib(15);
  printf("a=%d b=%d\n", a, b);
  return 0;
}
)";

  const elf::ElfFile exe = workloads::build_executable(source, "RISC", "profile_demo.c");

  cycle::MemoryHierarchy memory;
  cycle::DoeModel doe(&memory);
  sim::Simulator simulator(isa::kisa());
  sim::Profiler profiler;
  simulator.set_profiler(&profiler);
  simulator.load(exe);
  simulator.set_cycle_model(&doe);

  const sim::StopReason reason = simulator.run();
  std::printf("program output: %s", simulator.libc().output().c_str());
  std::printf("stopped: %s, %llu instructions, %llu DOE cycles\n\n",
              sim::to_string(reason),
              static_cast<unsigned long long>(simulator.stats().instructions),
              static_cast<unsigned long long>(doe.cycles()));

  std::printf("%-12s %12s %14s %8s\n", "function", "cycles", "instructions",
              "calls");
  for (const sim::FuncProfile& p : profiler.report())
    std::printf("%-12s %12llu %14llu %8llu\n", p.name.c_str(),
                static_cast<unsigned long long>(p.cycles),
                static_cast<unsigned long long>(p.instructions),
                static_cast<unsigned long long>(p.calls));
  return 0;
}
