// Multiple hardware threads on one reconfigurable fabric (paper Fig. 1 and
// §III): processor instances with different ISAs co-exist on the EDPE array,
// new threads are instantiated at run time when resources allow, and a
// thread's SWITCHTARGET reconfiguration can wait for EDPEs to free up.
#include <cstdio>

#include "isa/kisa.h"
#include "sim/fabric.h"
#include "workloads/build.h"

int main() {
  using namespace ksim;

  const char* worker = R"(
int main() {
  unsigned h = 2166136261u;
  for (int i = 0; i < 3000; i++) h = (h ^ (unsigned)i) * 16777619u;
  printf("worker done h=%x\n", h);
  return 0;
}
)";
  const char* reconfigurer = R"(
isa("VLIW8") int burst(int n) {
  int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
  for (int i = 0; i < n; i += 4) { s0 += i; s1 += i + 1; s2 += i + 2; s3 += i + 3; }
  return s0 + s1 + s2 + s3;
}
int main() {
  int total = 0;
  for (int rep = 0; rep < 3; rep++) total += burst(400);
  printf("burst total=%d\n", total);
  return 0;
}
)";

  sim::Fabric fabric(isa::kisa(), {.total_edpes = 8});
  std::printf("fabric: %d EDPEs\n", 8);

  struct Spawn {
    const char* name;
    const char* src;
    const char* isa;
  };
  const Spawn spawns[] = {
      {"jpeg-style worker (VLIW4)", worker, "VLIW4"},
      {"background task (RISC)", worker, "RISC"},
      {"reconfiguring thread (RISC->VLIW8)", reconfigurer, "RISC"},
      {"too-wide latecomer (VLIW6)", worker, "VLIW6"},
  };
  for (const Spawn& s : spawns) {
    const int id =
        fabric.spawn(workloads::build_executable(s.src, s.isa, "thread.c"), s.name);
    std::printf("spawn %-36s -> %s (EDPEs in use: %d/8)\n", s.name,
                id >= 0 ? "ok" : "REJECTED (no free EDPEs)", fabric.edpes_in_use());
  }

  fabric.run_to_completion();
  std::printf("\nall threads finished:\n");
  for (size_t id = 0; id < fabric.thread_count(); ++id) {
    const sim::ThreadStatus st = fabric.status(static_cast<int>(id));
    std::printf("  %-36s %8llu instructions, waited %llu rounds, exit %d\n",
                st.name.c_str(), static_cast<unsigned long long>(st.instructions),
                static_cast<unsigned long long>(st.waited_steps), st.exit_code);
    std::printf("    output: %s", fabric.output(static_cast<int>(id)).c_str());
  }
  return 0;
}
