// Mixed-ISA execution (paper §V-D): a program whose functions target
// different ISA configurations of the same processor.  The compiler emits
// SWITCHTARGET reconfiguration sequences around cross-ISA calls; the
// simulator switches its active operation table at run time.
#include <cstdio>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "kcc/compiler.h"
#include "sim/simulator.h"
#include "workloads/build.h"

int main() {
  using namespace ksim;

  // main runs on the resource-minimal RISC instance; the two kernels are
  // compiled for wide VLIW instances (the hardware would instantiate those
  // EDPE configurations on demand, Fig. 1 of the paper).
  const char* source = R"(
int data[256];

isa("VLIW8") int sum_of_squares(int *a, int n) {
  int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
  for (int i = 0; i < n; i += 4) {
    s0 += a[i] * a[i];
    s1 += a[i + 1] * a[i + 1];
    s2 += a[i + 2] * a[i + 2];
    s3 += a[i + 3] * a[i + 3];
  }
  return s0 + s1 + s2 + s3;
}

isa("VLIW4") int dot_self_shifted(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n - 1; i++) s += a[i] * a[i + 1];
  return s;
}

int main() {
  for (int i = 0; i < 256; i++) data[i] = (i * 7) % 23 - 11;
  int a = sum_of_squares(data, 256);
  int b = dot_self_shifted(data, 256);
  printf("sum_of_squares=%d dot=%d\n", a, b);
  return 0;
}
)";

  // Show the reconfiguration sequences in the generated assembly.
  kcc::CompileOptions copt;
  copt.file_name = "mixed.c";
  copt.codegen.default_isa = "RISC";
  const std::string assembly = kcc::compile_or_throw(source, copt);
  int switches = 0;
  for (size_t pos = 0; (pos = assembly.find("switchtarget", pos)) != std::string::npos;
       ++pos)
    ++switches;
  std::printf("generated assembly contains %d switchtarget instructions\n", switches);

  const elf::ElfFile exe = workloads::build_executable(source, "RISC", "mixed.c");
  cycle::MemoryHierarchy memory;
  cycle::DoeModel doe(&memory);
  sim::Simulator simulator(isa::kisa());
  simulator.load(exe);
  simulator.set_cycle_model(&doe);
  const sim::StopReason reason = simulator.run();

  std::printf("program output: %s", simulator.libc().output().c_str());
  std::printf("stopped: %s after %llu instructions\n", sim::to_string(reason),
              static_cast<unsigned long long>(simulator.stats().instructions));
  std::printf("run-time ISA reconfigurations (SWITCHTARGET): %llu\n",
              static_cast<unsigned long long>(simulator.stats().isa_switches));
  std::printf("DOE estimate: %llu cycles\n",
              static_cast<unsigned long long>(doe.cycles()));
  return 0;
}
